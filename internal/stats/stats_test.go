package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Sum != 15 {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEqual(s.Stddev, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Stddev = %v, want sqrt(2.5)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	cases := []struct{ x, want float64 }{
		{5, 0}, {10, 0.25}, {15, 0.25}, {20, 0.5}, {40, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Min() != 10 || e.Max() != 40 {
		t.Errorf("Min/Max = %v/%v", e.Min(), e.Max())
	}
	if !almostEqual(e.Mean(), 25, 1e-12) {
		t.Errorf("Mean = %v, want 25", e.Mean())
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if got := e.Quantile(0.5); !almostEqual(got, 50, 1e-9) {
		t.Errorf("Quantile(0.5) = %v, want 50", got)
	}
	if got := e.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	if got := e.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want 100", got)
	}
	if got := e.Quantile(0.25); !almostEqual(got, 25, 1e-9) {
		t.Errorf("Quantile(0.25) = %v, want 25", got)
	}
}

func TestECDFIncrementalAdd(t *testing.T) {
	var e ECDF
	for _, x := range []float64{3, 1, 2} {
		e.Add(x)
	}
	if got := e.P(2); !almostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("P(2) = %v, want 2/3", got)
	}
	e.Add(0) // un-finalizes and re-sorts on next query
	if got := e.P(0); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("P(0) after Add = %v, want 0.25", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	var e ECDF
	if e.P(5) != 0 || e.Mean() != 0 || e.Max() != 0 || e.Min() != 0 || e.N() != 0 {
		t.Error("empty ECDF should return zeros")
	}
	if pts := e.Points(10); pts != nil {
		t.Error("empty ECDF Points should be nil")
	}
}

func TestECDFPointsMonotone(t *testing.T) {
	r := rng.New(1)
	var xs []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, r.LogNormal(2, 1))
	}
	e := NewECDF(xs)
	pts := e.Points(50)
	if len(pts) != 50 {
		t.Fatalf("Points returned %d, want 50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("Points not monotone at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
	if !almostEqual(pts[len(pts)-1][1], 1, 1e-9) {
		t.Errorf("last point P = %v, want 1", pts[len(pts)-1][1])
	}
}

// Property: P is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		pl, ph := e.P(lo), e.P(hi)
		return pl >= 0 && ph <= 1 && pl <= ph
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and P are approximately inverse.
func TestQuantileInverseProperty(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	e := NewECDF(xs)
	for q := 0.05; q < 1; q += 0.05 {
		x := e.Quantile(q)
		p := e.P(x)
		if p < q-0.01 {
			t.Errorf("P(Quantile(%v)) = %v, want >= %v", q, p, q)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(-5)
	h.Add(100)
	h.Add(1e9)
	for i, c := range h.Counts {
		if c != 10 {
			t.Errorf("bin %d count = %d, want 10", i, c)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Total() != 103 {
		t.Errorf("Total = %d, want 103", h.Total())
	}
	if !almostEqual(h.BinCenter(0), 5, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 5", h.BinCenter(0))
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0)) // just below the upper bound
	sum := uint64(0)
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 1 || h.Over != 0 {
		t.Errorf("edge sample landed wrong: counts=%v over=%d", h.Counts, h.Over)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds did not panic")
		}
	}()
	NewHistogram(10, 5, 3)
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson perfect positive = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson perfect negative = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	r, err = Pearson(xs, flat)
	if err != nil || r != 0 {
		t.Errorf("Pearson zero-variance = %v, %v; want 0, nil", r, err)
	}
	if _, err := Pearson(xs, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestFitZipfRecoversParameters(t *testing.T) {
	// Generate exact counts y = e^b * r^-a and check recovery.
	a, b := 0.82, 17.12
	counts := make([]uint64, 5000)
	for r := 1; r <= len(counts); r++ {
		counts[r-1] = uint64(math.Exp(b) * math.Pow(float64(r), -a))
	}
	fit, err := FitZipf(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.A, a, 0.03) || !almostEqual(fit.B, b, 0.2) {
		t.Errorf("FitZipf = a %.3f b %.3f, want ~%.2f ~%.2f", fit.A, fit.B, a, b)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want near 1 on exact data", fit.R2)
	}
}

func TestFitZipfSkipsZeros(t *testing.T) {
	counts := []uint64{100, 50, 0, 25, 0}
	if _, err := FitZipf(counts); err != nil {
		t.Fatalf("FitZipf with zeros errored: %v", err)
	}
	if _, err := FitZipf([]uint64{5}); err != ErrNoData {
		t.Errorf("single point should be ErrNoData, got %v", err)
	}
	if _, err := FitZipf([]uint64{0, 0}); err != ErrNoData {
		t.Errorf("all zeros should be ErrNoData, got %v", err)
	}
}

func TestFitZipfOnSampledData(t *testing.T) {
	r := rng.New(42)
	z := r.Zipf(1.8, 2000)
	counts := make([]uint64, 2000)
	for i := 0; i < 2_000_00; i++ {
		counts[z.Rank()]++
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	fit, err := FitZipf(counts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.A <= 0 {
		t.Errorf("fitted skew should be positive, got %v", fit.A)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 10}, []float64{9, 1})
	if err != nil || !almostEqual(got, 1.9, 1e-12) {
		t.Errorf("WeightedMean = %v, %v; want 1.9", got, err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err != ErrNoData {
		t.Errorf("zero weights should be ErrNoData, got %v", err)
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(100, 60); !almostEqual(got, -0.4, 1e-12) {
		t.Errorf("RelativeChange(100,60) = %v, want -0.4", got)
	}
	if got := RelativeChange(0, 60); got != 0 {
		t.Errorf("RelativeChange(0,60) = %v, want 0", got)
	}
}

func TestQuantileSortedSinglePoint(t *testing.T) {
	e := NewECDF([]float64{7})
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if got := e.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %v, want 7", q, got)
		}
	}
}

func TestWinsorizedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100000}
	raw, _ := Summarize(xs)
	win, err := WinsorizedMean(xs, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if win >= raw.Mean/100 {
		t.Errorf("winsorized mean %v should clip the outlier (raw %v)", win, raw.Mean)
	}
	if win < 2 || win > 4 {
		t.Errorf("winsorized mean %v out of plausible range", win)
	}
	if _, err := WinsorizedMean(nil, 0.9); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
	// q=1 leaves the sample untouched.
	full, _ := WinsorizedMean(xs, 1)
	if math.Abs(full-raw.Mean) > 1e-9 {
		t.Errorf("q=1 winsorized mean %v != raw %v", full, raw.Mean)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	r := rng.New(21)
	var a, b, c []float64
	for i := 0; i < 5000; i++ {
		a = append(a, r.Normal(0, 1))
		b = append(b, r.Normal(0, 1))
		c = append(c, r.Normal(3, 1))
	}
	same, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if same > 0.05 {
		t.Errorf("KS of identical distributions = %v", same)
	}
	diff, _ := KolmogorovSmirnov(a, c)
	if diff < 0.8 {
		t.Errorf("KS of shifted distributions = %v, want near 1", diff)
	}
	if _, err := KolmogorovSmirnov(nil, a); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
	// Identical samples: KS exactly 0.
	if d, _ := KolmogorovSmirnov(a, a); d != 0 {
		t.Errorf("KS(a,a) = %v", d)
	}
}
