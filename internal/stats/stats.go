// Package stats implements the statistical primitives the analysis pipeline
// needs: empirical CDFs, histograms, quantiles, correlation, and Zipf-law
// fitting (the paper fits failures-per-base-station to a Zipf curve with
// a = 0.82, b = 17.12 in Figure 11).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by operations that need at least one sample.
var ErrNoData = errors.New("stats: no data")

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
	Sum    float64
}

// Summarize computes descriptive statistics. It returns ErrNoData for an
// empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	return s, nil
}

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is empty; Add then Finalize, or build with NewECDF.
type ECDF struct {
	xs        []float64
	finalized bool
}

// NewECDF builds a finalized ECDF from a sample (which it copies).
func NewECDF(xs []float64) *ECDF {
	e := &ECDF{xs: append([]float64(nil), xs...)}
	e.Finalize()
	return e
}

// Add appends a sample point. Calling Add after Finalize un-finalizes.
func (e *ECDF) Add(x float64) {
	e.xs = append(e.xs, x)
	e.finalized = false
}

// Finalize sorts the sample; it is idempotent.
func (e *ECDF) Finalize() {
	if !e.finalized {
		sortFloats(e.xs)
		e.finalized = true
	}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.xs) }

// P returns the fraction of samples <= x (the CDF value at x).
func (e *ECDF) P(x float64) float64 {
	e.Finalize()
	if len(e.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) with linear
// interpolation between order statistics.
func (e *ECDF) Quantile(q float64) float64 {
	e.Finalize()
	return quantileSorted(e.xs, q)
}

// Mean returns the sample mean (0 for an empty sample).
func (e *ECDF) Mean() float64 {
	if len(e.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range e.xs {
		sum += x
	}
	return sum / float64(len(e.xs))
}

// Max returns the sample maximum (0 for an empty sample).
func (e *ECDF) Max() float64 {
	e.Finalize()
	if len(e.xs) == 0 {
		return 0
	}
	return e.xs[len(e.xs)-1]
}

// Min returns the sample minimum (0 for an empty sample).
func (e *ECDF) Min() float64 {
	e.Finalize()
	if len(e.xs) == 0 {
		return 0
	}
	return e.xs[0]
}

// Points returns up to n evenly spaced (x, P(X<=x)) points for plotting.
func (e *ECDF) Points(n int) [][2]float64 {
	e.Finalize()
	if len(e.xs) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.xs) {
		n = len(e.xs)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.xs) - 1) / max(n-1, 1)
		pts = append(pts, [2]float64{e.xs[idx], float64(idx+1) / float64(len(e.xs))})
	}
	return pts
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts samples into equal-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []uint64
	Under    uint64 // samples below Lo
	Over     uint64 // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // guard against float rounding at the edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() uint64 {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns 0 if either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrNoData
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ZipfFit holds fitted Zipf-law parameters for counts y(r) ≈ e^b · r^(-a)
// over ranks r = 1..n, i.e. ln y = b − a·ln r, matching Figure 11's (a, b).
type ZipfFit struct {
	A  float64 // slope magnitude (skew)
	B  float64 // intercept in log space
	R2 float64 // coefficient of determination in log-log space
}

// FitZipf fits a Zipf law to counts already sorted in descending order.
// Zero counts are excluded (log undefined). Needs at least two positive
// counts.
func FitZipf(sortedCounts []uint64) (ZipfFit, error) {
	var lx, ly []float64
	for i, c := range sortedCounts {
		if c == 0 {
			continue
		}
		lx = append(lx, math.Log(float64(i+1)))
		ly = append(ly, math.Log(float64(c)))
	}
	if len(lx) < 2 {
		return ZipfFit{}, ErrNoData
	}
	slope, intercept, r2 := linearRegression(lx, ly)
	return ZipfFit{A: -slope, B: intercept, R2: r2}, nil
}

// linearRegression returns least-squares slope, intercept and R² for y on x.
func linearRegression(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// WeightedMean returns the mean of xs weighted by ws.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, errors.New("stats: length mismatch")
	}
	var sum, wsum float64
	for i := range xs {
		sum += xs[i] * ws[i]
		wsum += ws[i]
	}
	if wsum == 0 {
		return 0, ErrNoData
	}
	return sum / wsum, nil
}

// RelativeChange returns (after-before)/before, the metric used throughout
// §4.3 ("reduced 40% cellular failures"). A negative result is a reduction.
func RelativeChange(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before
}

// WinsorizedMean returns the mean with values above the q-quantile clipped
// to it. Simulation-scale fleets cannot average away a 25-hour outage tail
// the way 2.3 billion events can; comparisons of means across runs use a
// winsorized estimator to keep the tail from drowning the effect.
func WinsorizedMean(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	cap := NewECDF(xs).Quantile(q)
	sum := 0.0
	for _, x := range xs {
		if x > cap {
			x = cap
		}
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// KolmogorovSmirnov returns the KS statistic (the maximum CDF distance)
// between two samples — how far apart two measured distributions are,
// used to quantify figure-level agreement between runs.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrNoData
	}
	ea, eb := NewECDF(a), NewECDF(b)
	maxD := 0.0
	for _, xs := range [][]float64{a, b} {
		for _, x := range xs {
			d := math.Abs(ea.P(x) - eb.P(x))
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD, nil
}
