package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestP2AgainstExactQuantiles(t *testing.T) {
	r := rng.New(1)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		p2, err := NewP2(q)
		if err != nil {
			t.Fatal(err)
		}
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := r.LogNormal(2, 1.2)
			xs = append(xs, x)
			p2.Add(x)
		}
		exact := NewECDF(xs).Quantile(q)
		got := p2.Quantile()
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q=%v: P2=%v exact=%v (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestP2UniformMedian(t *testing.T) {
	r := rng.New(2)
	p2, _ := NewP2(0.5)
	for i := 0; i < 100000; i++ {
		p2.Add(r.Float64() * 100)
	}
	if got := p2.Quantile(); math.Abs(got-50) > 1.5 {
		t.Errorf("uniform median = %v, want ≈50", got)
	}
	if p2.N() != 100000 {
		t.Errorf("N = %d", p2.N())
	}
}

func TestP2SmallSamples(t *testing.T) {
	p2, _ := NewP2(0.5)
	if p2.Quantile() != 0 {
		t.Error("empty estimator should return 0")
	}
	p2.Add(3)
	p2.Add(1)
	p2.Add(2)
	if got := p2.Quantile(); got != 2 {
		t.Errorf("small-sample median = %v, want 2", got)
	}
}

func TestP2SortedAndReversedInput(t *testing.T) {
	// Adversarial orderings must not break the markers.
	for _, dir := range []int{1, -1} {
		p2, _ := NewP2(0.5)
		n := 10001
		for i := 0; i < n; i++ {
			v := i
			if dir < 0 {
				v = n - i
			}
			p2.Add(float64(v))
		}
		got := p2.Quantile()
		if math.Abs(got-float64(n)/2) > float64(n)/20 {
			t.Errorf("dir %d median = %v, want ≈%v", dir, got, n/2)
		}
	}
}

func TestP2InvalidQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		if _, err := NewP2(q); err == nil {
			t.Errorf("q=%v accepted", q)
		}
	}
}

func TestQuantileSet(t *testing.T) {
	s, err := NewQuantileSet(0.25, 0.5, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 40000; i++ {
		s.Add(r.Float64() * 100)
	}
	qs := s.Quantiles()
	want := []float64{25, 50, 75}
	for i, w := range want {
		if math.Abs(qs[i]-w) > 2 {
			t.Errorf("quantile %d = %v, want ≈%v", i, qs[i], w)
		}
	}
	// Estimates must be ordered.
	if !(qs[0] < qs[1] && qs[1] < qs[2]) {
		t.Errorf("quantiles not ordered: %v", qs)
	}
	if _, err := NewQuantileSet(0.5, 2); err == nil {
		t.Error("invalid quantile in set accepted")
	}
}

func TestP2ConstantStream(t *testing.T) {
	p2, _ := NewP2(0.9)
	for i := 0; i < 1000; i++ {
		p2.Add(7)
	}
	if got := p2.Quantile(); got != 7 {
		t.Errorf("constant stream quantile = %v, want 7", got)
	}
}
