package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestP2AgainstExactQuantiles(t *testing.T) {
	r := rng.New(1)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		p2, err := NewP2(q)
		if err != nil {
			t.Fatal(err)
		}
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := r.LogNormal(2, 1.2)
			xs = append(xs, x)
			p2.Add(x)
		}
		exact := NewECDF(xs).Quantile(q)
		got := p2.Quantile()
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q=%v: P2=%v exact=%v (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestP2UniformMedian(t *testing.T) {
	r := rng.New(2)
	p2, _ := NewP2(0.5)
	for i := 0; i < 100000; i++ {
		p2.Add(r.Float64() * 100)
	}
	if got := p2.Quantile(); math.Abs(got-50) > 1.5 {
		t.Errorf("uniform median = %v, want ≈50", got)
	}
	if p2.N() != 100000 {
		t.Errorf("N = %d", p2.N())
	}
}

func TestP2SmallSamples(t *testing.T) {
	p2, _ := NewP2(0.5)
	if p2.Quantile() != 0 {
		t.Error("empty estimator should return 0")
	}
	p2.Add(3)
	p2.Add(1)
	p2.Add(2)
	if got := p2.Quantile(); got != 2 {
		t.Errorf("small-sample median = %v, want 2", got)
	}
}

func TestP2SortedAndReversedInput(t *testing.T) {
	// Adversarial orderings must not break the markers.
	for _, dir := range []int{1, -1} {
		p2, _ := NewP2(0.5)
		n := 10001
		for i := 0; i < n; i++ {
			v := i
			if dir < 0 {
				v = n - i
			}
			p2.Add(float64(v))
		}
		got := p2.Quantile()
		if math.Abs(got-float64(n)/2) > float64(n)/20 {
			t.Errorf("dir %d median = %v, want ≈%v", dir, got, n/2)
		}
	}
}

func TestP2InvalidQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		if _, err := NewP2(q); err == nil {
			t.Errorf("q=%v accepted", q)
		}
	}
}

func TestQuantileSet(t *testing.T) {
	s, err := NewQuantileSet(0.25, 0.5, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 40000; i++ {
		s.Add(r.Float64() * 100)
	}
	qs := s.Quantiles()
	want := []float64{25, 50, 75}
	for i, w := range want {
		if math.Abs(qs[i]-w) > 2 {
			t.Errorf("quantile %d = %v, want ≈%v", i, qs[i], w)
		}
	}
	// Estimates must be ordered.
	if !(qs[0] < qs[1] && qs[1] < qs[2]) {
		t.Errorf("quantiles not ordered: %v", qs)
	}
	if _, err := NewQuantileSet(0.5, 2); err == nil {
		t.Error("invalid quantile in set accepted")
	}
}

func TestP2ConstantStream(t *testing.T) {
	p2, _ := NewP2(0.9)
	for i := 0; i < 1000; i++ {
		p2.Add(7)
	}
	if got := p2.Quantile(); got != 7 {
		t.Errorf("constant stream quantile = %v, want 7", got)
	}
}

// TestP2MergeAccuracy merges two sketches over halves of one stream and
// requires the merged median to stay close to the exact one — the
// windowed-analysis use case (per-bucket sketches merged at query time).
func TestP2MergeAccuracy(t *testing.T) {
	r := rng.New(4)
	a, _ := NewP2(0.5)
	b, _ := NewP2(0.5)
	var xs []float64
	for i := 0; i < 20000; i++ {
		x := r.LogNormal(2, 1.2)
		xs = append(xs, x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != 20000 {
		t.Fatalf("merged N = %d, want 20000", a.N())
	}
	exact := NewECDF(xs).Quantile(0.5)
	got := a.Quantile()
	if rel := math.Abs(got-exact) / exact; rel > 0.10 {
		t.Errorf("merged median = %v, exact = %v (rel err %.3f)", got, exact, rel)
	}
	// The merged sketch must keep accepting observations.
	for i := 0; i < 1000; i++ {
		a.Add(r.LogNormal(2, 1.2))
	}
	if a.N() != 21000 {
		t.Fatalf("post-merge N = %d, want 21000", a.N())
	}
}

// TestP2MergeSmallSides pins the exact small-sample paths: empty receiver,
// empty other, and either side still buffering raw samples.
func TestP2MergeSmallSides(t *testing.T) {
	mk := func(xs ...float64) *P2 {
		p, _ := NewP2(0.5)
		for _, x := range xs {
			p.Add(x)
		}
		return p
	}
	// Empty other: no-op.
	p := mk(1, 2, 3)
	p.Merge(mk())
	if p.N() != 3 || p.Quantile() != 2 {
		t.Fatalf("merge with empty: N=%d q=%v", p.N(), p.Quantile())
	}
	// Empty receiver adopts the other.
	p = mk()
	p.Merge(mk(5, 6, 7))
	if p.N() != 3 || p.Quantile() != 6 {
		t.Fatalf("empty receiver: N=%d q=%v", p.N(), p.Quantile())
	}
	// Both small: exact union median.
	p = mk(1, 2)
	p.Merge(mk(3, 4, 100))
	if p.N() != 5 || p.Quantile() != 3 {
		t.Fatalf("both small: N=%d q=%v, want 5/3", p.N(), p.Quantile())
	}
	// Small receiver, initialized other.
	big := mk()
	for i := 1; i <= 100; i++ {
		big.Add(float64(i))
	}
	p = mk(50, 50, 50)
	p.Merge(big)
	if p.N() != 103 {
		t.Fatalf("small+big N = %d, want 103", p.N())
	}
	if q := p.Quantile(); q < 1 || q > 100 {
		t.Fatalf("small+big median %v outside data range", q)
	}
}

// TestP2MergeBounds fuzz-lite: merged estimates must stay inside the union
// min/max for adversarially different distributions.
func TestP2MergeBounds(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		a, _ := NewP2(0.9)
		b, _ := NewP2(0.9)
		lo, hi := math.Inf(1), math.Inf(-1)
		add := func(p *P2, x float64) {
			p.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		na, nb := 5+int(r.Float64()*200), 5+int(r.Float64()*200)
		for i := 0; i < na; i++ {
			add(a, r.Float64()*1000)
		}
		for i := 0; i < nb; i++ {
			add(b, -500+r.Float64()*10)
		}
		a.Merge(b)
		if got := a.Quantile(); got < lo || got > hi {
			t.Fatalf("trial %d: merged quantile %v outside [%v, %v]", trial, got, lo, hi)
		}
		if a.N() != na+nb {
			t.Fatalf("trial %d: N = %d, want %d", trial, a.N(), na+nb)
		}
	}
}

// TestQuantileSetCloneMerge checks set-level clone independence and merge.
func TestQuantileSetCloneMerge(t *testing.T) {
	s, _ := NewQuantileSet(0.5, 0.9, 0.99)
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		s.Add(r.Float64() * 10)
	}
	c := s.Clone()
	before := append([]float64(nil), s.Quantiles()...)
	for i := 0; i < 1000; i++ {
		c.Add(1e6)
	}
	after := s.Quantiles()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("clone not independent: quantile %d changed %v -> %v", i, before[i], after[i])
		}
	}
	o, _ := NewQuantileSet(0.5, 0.9, 0.99)
	for i := 0; i < 1000; i++ {
		o.Add(100 + r.Float64())
	}
	s.Merge(o)
	if s.N() != 2000 {
		t.Fatalf("merged set N = %d, want 2000", s.N())
	}
	qs := s.Quantiles()
	for i, q := range qs {
		if math.IsNaN(q) || q < 0 || q > 101 {
			t.Fatalf("merged quantile %d = %v outside union range", i, q)
		}
	}
}
