package stats

import (
	"math"
	"sort"
)

// radixMinLen is the size below which the comparison sort wins: the radix
// passes have a fixed per-call cost (key mapping plus histograms) that only
// amortizes on large samples.
const radixMinLen = 1 << 12

// sortFloats sorts xs ascending, producing exactly the order sort.Float64s
// would. Large slices take an LSD radix sort over the order-preserving
// uint64 key mapping, skipping digit positions that are constant across
// the sample (duration-style data concentrates in a narrow exponent range,
// so most of the eight passes collapse). Samples containing NaN fall back
// to the comparison sort; ECDF inputs never carry NaN, but the fallback
// keeps the helper total.
func sortFloats(xs []float64) {
	if len(xs) < radixMinLen {
		sort.Float64s(xs)
		return
	}
	keys := make([]uint64, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) {
			sort.Float64s(xs)
			return
		}
		b := math.Float64bits(x)
		// Monotone map to unsigned order: flip all bits of negatives,
		// set the sign bit of non-negatives.
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[i] = b
	}
	tmp := make([]uint64, len(keys))
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [256]int
		for _, k := range keys {
			counts[(k>>shift)&0xff]++
		}
		if counts[(keys[0]>>shift)&0xff] == len(keys) {
			continue // every key shares this digit: nothing to reorder
		}
		sum := 0
		for d := range counts {
			c := counts[d]
			counts[d] = sum
			sum += c
		}
		for _, k := range keys {
			d := (k >> shift) & 0xff
			tmp[counts[d]] = k
			counts[d]++
		}
		keys, tmp = tmp, keys
	}
	for i, k := range keys {
		if k&(1<<63) != 0 {
			k &^= 1 << 63
		} else {
			k = ^k
		}
		xs[i] = math.Float64frombits(k)
	}
}
