package stats

import (
	"errors"
	"sort"
)

// P2 is the Jain/Chlamtac P² streaming quantile estimator: it tracks one
// quantile of an unbounded stream with five markers and O(1) memory. The
// paper's backend ingests billions of failure durations; quantile sketches
// let per-model/per-ISP percentiles be tracked without retaining samples.
type P2 struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments
	initBuf []float64
}

// NewP2 creates an estimator for quantile q in (0, 1).
func NewP2(q float64) (*P2, error) {
	if q <= 0 || q >= 1 {
		return nil, errors.New("stats: quantile must be in (0, 1)")
	}
	p := &P2{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// Add feeds one observation.
func (p *P2) Add(x float64) {
	p.n++
	if p.n <= 5 {
		p.initBuf = append(p.initBuf, x)
		if p.n == 5 {
			sort.Float64s(p.initBuf)
			copy(p.heights[:], p.initBuf)
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.initBuf = nil
		}
		return
	}

	// Find the cell k containing x and clamp the extremes.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.inc[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic prediction.
func (p *P2) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations.
func (p *P2) N() int { return p.n }

// Quantile returns the current estimate. With fewer than five samples it
// falls back to the exact small-sample quantile.
func (p *P2) Quantile() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		buf := append([]float64(nil), p.initBuf...)
		sort.Float64s(buf)
		return quantileSorted(buf, p.q)
	}
	return p.heights[2]
}

// QuantileSet tracks several quantiles of one stream.
type QuantileSet struct {
	qs       []float64
	trackers []*P2
}

// NewQuantileSet builds trackers for each quantile.
func NewQuantileSet(qs ...float64) (*QuantileSet, error) {
	s := &QuantileSet{qs: qs}
	for _, q := range qs {
		t, err := NewP2(q)
		if err != nil {
			return nil, err
		}
		s.trackers = append(s.trackers, t)
	}
	return s, nil
}

// Add feeds one observation to all trackers.
func (s *QuantileSet) Add(x float64) {
	for _, t := range s.trackers {
		t.Add(x)
	}
}

// Quantiles returns the current estimates in input order.
func (s *QuantileSet) Quantiles() []float64 {
	out := make([]float64, len(s.trackers))
	for i, t := range s.trackers {
		out[i] = t.Quantile()
	}
	return out
}
