package stats

import (
	"errors"
	"math"
	"sort"
)

// P2 is the Jain/Chlamtac P² streaming quantile estimator: it tracks one
// quantile of an unbounded stream with five markers and O(1) memory. The
// paper's backend ingests billions of failure durations; quantile sketches
// let per-model/per-ISP percentiles be tracked without retaining samples.
type P2 struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments
	initBuf []float64
}

// NewP2 creates an estimator for quantile q in (0, 1).
func NewP2(q float64) (*P2, error) {
	if q <= 0 || q >= 1 {
		return nil, errors.New("stats: quantile must be in (0, 1)")
	}
	p := &P2{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// Add feeds one observation.
func (p *P2) Add(x float64) {
	p.n++
	if p.n <= 5 {
		p.initBuf = append(p.initBuf, x)
		if p.n == 5 {
			sort.Float64s(p.initBuf)
			copy(p.heights[:], p.initBuf)
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.initBuf = nil
		}
		return
	}

	// Find the cell k containing x and clamp the extremes.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.inc[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic prediction.
func (p *P2) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations.
func (p *P2) N() int { return p.n }

// Clone returns an independent copy of the estimator.
func (p *P2) Clone() *P2 {
	c := *p
	c.initBuf = append([]float64(nil), p.initBuf...)
	return &c
}

// Merge folds another estimator for the same quantile into p, so windowed
// sketches can combine without either side retaining samples. The merge is
// exact while either side is still buffering raw samples (< 5
// observations) and approximate afterwards: extremes combine as min/max,
// interior markers as count-weighted averages, and marker positions resume
// from the combined count — the merged estimator keeps tracking the stream
// with O(1) memory. Bounds are preserved: the merged estimate always lies
// within [min, max] of the union of both streams.
func (p *P2) Merge(o *P2) {
	if o == nil || o.n == 0 {
		return
	}
	if p.n == 0 {
		// Merging is only defined for sketches tracking the same quantile,
		// so an empty receiver simply adopts the other's full state.
		*p = *o.Clone()
		return
	}
	if o.n < 5 {
		for _, x := range o.initBuf {
			p.Add(x)
		}
		return
	}
	if p.n < 5 {
		buf := p.initBuf
		*p = *o.Clone()
		for _, x := range buf {
			p.Add(x)
		}
		return
	}

	n := p.n + o.n
	wp := float64(p.n) / float64(n)
	wo := 1 - wp
	var h [5]float64
	h[0] = math.Min(p.heights[0], o.heights[0])
	h[4] = math.Max(p.heights[4], o.heights[4])
	for i := 1; i <= 3; i++ {
		h[i] = wp*p.heights[i] + wo*o.heights[i]
	}
	for i := 1; i < 5; i++ {
		if h[i] < h[i-1] {
			h[i] = h[i-1]
		}
	}
	var pos [5]float64
	pos[0] = 1
	for i := 1; i <= 3; i++ {
		pos[i] = p.pos[i] + o.pos[i]
		if pos[i] <= pos[i-1] {
			pos[i] = pos[i-1] + 1
		}
	}
	pos[4] = float64(n)
	if pos[4] <= pos[3] {
		pos[4] = pos[3] + 1
	}
	p.n = n
	p.heights = h
	p.pos = pos
	p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
	for i := range p.want {
		p.want[i] += p.inc[i] * float64(n-5)
	}
	p.initBuf = nil
}

// Quantile returns the current estimate. With fewer than five samples it
// falls back to the exact small-sample quantile.
func (p *P2) Quantile() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		buf := append([]float64(nil), p.initBuf...)
		sort.Float64s(buf)
		return quantileSorted(buf, p.q)
	}
	return p.heights[2]
}

// QuantileSet tracks several quantiles of one stream.
type QuantileSet struct {
	qs       []float64
	trackers []*P2
}

// NewQuantileSet builds trackers for each quantile.
func NewQuantileSet(qs ...float64) (*QuantileSet, error) {
	s := &QuantileSet{qs: qs}
	for _, q := range qs {
		t, err := NewP2(q)
		if err != nil {
			return nil, err
		}
		s.trackers = append(s.trackers, t)
	}
	return s, nil
}

// Add feeds one observation to all trackers.
func (s *QuantileSet) Add(x float64) {
	for _, t := range s.trackers {
		t.Add(x)
	}
}

// Quantiles returns the current estimates in input order.
func (s *QuantileSet) Quantiles() []float64 {
	out := make([]float64, len(s.trackers))
	for i, t := range s.trackers {
		out[i] = t.Quantile()
	}
	return out
}

// N returns the number of observations fed to the set.
func (s *QuantileSet) N() int {
	if len(s.trackers) == 0 {
		return 0
	}
	return s.trackers[0].N()
}

// Clone returns an independent copy of the set.
func (s *QuantileSet) Clone() *QuantileSet {
	c := &QuantileSet{qs: append([]float64(nil), s.qs...)}
	for _, t := range s.trackers {
		c.trackers = append(c.trackers, t.Clone())
	}
	return c
}

// Merge folds another set built with the same quantiles into s (tracker by
// tracker; see P2.Merge for the combination semantics). Sets of different
// shapes merge pairwise over the shared prefix.
func (s *QuantileSet) Merge(o *QuantileSet) {
	if o == nil {
		return
	}
	for i, t := range s.trackers {
		if i >= len(o.trackers) {
			break
		}
		t.Merge(o.trackers[i])
	}
}
