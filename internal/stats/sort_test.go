package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestSortFloatsMatchesStdlib pins the radix path to sort.Float64s on
// inputs chosen to stress it: sizes straddling the radix threshold,
// negative values, infinities, signed zeros, denormals, and heavy
// duplication (the duration-data shape the skip-constant-digit pass
// optimization targets).
func TestSortFloatsMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := [][]float64{
		nil,
		{},
		{3, 1, 2},
		{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 1e-308, -1e-308},
	}
	for _, n := range []int{radixMinLen - 1, radixMinLen, radixMinLen + 1, 3 * radixMinLen} {
		mixed := make([]float64, n)
		dups := make([]float64, n)
		for i := range mixed {
			mixed[i] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(20)-10))
			dups[i] = float64(1 + r.Intn(300)) // integral seconds, like durations
		}
		cases = append(cases, mixed, dups)
	}
	for _, xs := range cases {
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		got := append([]float64(nil), xs...)
		sortFloats(got)
		if len(got) != len(want) {
			t.Fatalf("length changed: %d -> %d", len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] || math.Signbit(got[i]) != math.Signbit(want[i]) {
				t.Fatalf("n=%d index %d: got %v want %v", len(xs), i, got[i], want[i])
			}
		}
	}
}

// TestSortFloatsNaNFallback checks NaN inputs still end up sorted the way
// sort.Float64s leaves them (NaNs first in Go's float ordering).
func TestSortFloatsNaNFallback(t *testing.T) {
	xs := make([]float64, radixMinLen)
	for i := range xs {
		xs[i] = float64(radixMinLen - i)
	}
	xs[17] = math.NaN()
	sortFloats(xs)
	if !math.IsNaN(xs[0]) {
		t.Errorf("NaN not sorted first: %v", xs[0])
	}
	if !sort.Float64sAreSorted(xs) {
		t.Error("fallback output not sorted")
	}
}
