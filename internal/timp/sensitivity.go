package timp

import (
	"fmt"

	"repro/internal/anneal"
	"repro/internal/rng"
)

// SensitivityRow is one perturbation of the model's operation parameters
// and the re-optimized outcome — the ablation behind trusting the
// annealed probations ("TIMP works in a principled and flexible manner, so
// it will automatically adapt to pattern changes", §4.3).
type SensitivityRow struct {
	Name        string
	Probations  Probations
	Cost        float64
	DefaultCost float64
}

// Sensitivity re-fits and re-optimizes the model under a set of parameter
// perturbations: baseline, first-op success ±, disruption penalties
// halved/doubled, and operation overheads doubled. All rows share the
// duration samples and the annealing seed.
func Sensitivity(samples []float64, base Options, seed int64, cfg anneal.Config) ([]SensitivityRow, error) {
	perturbations := []struct {
		name   string
		mutate func(Options) Options
	}{
		{"baseline", func(o Options) Options { return o }},
		{"op1-success-0.60", func(o Options) Options { o.OpSuccess[0] = 0.60; return o }},
		{"op1-success-0.90", func(o Options) Options { o.OpSuccess[0] = 0.90; return o }},
		{"penalties-halved", func(o Options) Options {
			for i := range o.OpPenalty {
				o.OpPenalty[i] /= 2
			}
			return o
		}},
		{"penalties-doubled", func(o Options) Options {
			for i := range o.OpPenalty {
				o.OpPenalty[i] *= 2
			}
			return o
		}},
		{"overheads-doubled", func(o Options) Options {
			for i := range o.OpOverhead {
				o.OpOverhead[i] *= 2
			}
			return o
		}},
	}
	out := make([]SensitivityRow, 0, len(perturbations))
	for _, p := range perturbations {
		model, err := New(samples, p.mutate(base))
		if err != nil {
			return nil, fmt.Errorf("timp: sensitivity %s: %w", p.name, err)
		}
		res := model.Optimize(rng.New(seed), cfg)
		out = append(out, SensitivityRow{
			Name:        p.name,
			Probations:  res.Probations,
			Cost:        res.Cost,
			DefaultCost: res.DefaultCost,
		})
	}
	return out, nil
}
