package timp

import (
	"math"
	"testing"
	"time"

	"repro/internal/anneal"
	"repro/internal/rng"
)

// figure10Samples draws self-recovery durations shaped like Figure 10:
// ~60% fixed within 10 s, >80% within 300 s, with a heavy tail.
func figure10Samples(n int, seed int64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		if r.Bool(0.85) {
			xs[i] = r.LogNormal(math.Log(5), 1.2)
		} else {
			xs[i] = r.LogNormal(math.Log(600), 1.5)
		}
	}
	return xs
}

func fittedModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(figure10Samples(30000, 42), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil, DefaultOptions()); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := New([]float64{-1, 0, math.NaN(), math.Inf(1)}, DefaultOptions()); err != ErrNoData {
		t.Errorf("err = %v for all-invalid samples", err)
	}
}

func TestRecoveryCDFMonotoneAndCalibrated(t *testing.T) {
	m := fittedModel(t)
	prev := 0.0
	for tt := 0.0; tt <= 90; tt += 0.5 {
		p := m.RecoveryCDF(tt)
		if p < prev-1e-9 {
			t.Fatalf("CDF not monotone at %v: %v < %v", tt, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("CDF out of range at %v: %v", tt, p)
		}
		prev = p
	}
	// Figure 10 anchor: ~60% of stalls self-fix within 10 s.
	if p := m.RecoveryCDF(10); math.Abs(p-0.60) > 0.05 {
		t.Errorf("P(T<=10s) = %.3f, want ≈0.60", p)
	}
	if m.RecoveryCDF(0) != 0 || m.RecoveryCDF(-5) != 0 {
		t.Error("CDF at non-positive t should be 0")
	}
	// Grid/ECDF boundary continuity.
	if d := math.Abs(m.RecoveryCDF(95.95) - m.RecoveryCDF(96.05)); d > 0.01 {
		t.Errorf("grid boundary discontinuity %v", d)
	}
}

func TestExpectedCostFiniteAndPositive(t *testing.T) {
	m := fittedModel(t)
	for _, pro := range []Probations{{60, 60, 60}, {21, 6, 16}, {0, 0, 0}, {90, 90, 90}} {
		c := m.ExpectedCost(pro)
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("ExpectedCost(%v) = %v", pro, c)
		}
	}
	// Negative probations clamp to zero rather than corrupting the
	// integral.
	if c := m.ExpectedCost(Probations{-5, -5, -5}); math.Abs(c-m.ExpectedCost(Probations{0, 0, 0})) > 1e-9 {
		t.Errorf("negative probations not clamped: %v", c)
	}
}

func TestInteriorOptimumExists(t *testing.T) {
	m := fittedModel(t)
	def := m.DefaultCost()
	zero := m.ExpectedCost(Probations{0, 0, 0})
	short := m.ExpectedCost(Probations{20, 6, 15})
	// The whole point of the enhancement: much shorter probations beat
	// the one-minute default...
	if short >= def {
		t.Errorf("short probations (%.1f) should beat default (%.1f)", short, def)
	}
	// ...but firing operations immediately is also worse than a judicious
	// wait, because operations disrupt stalls that would have self-healed.
	if short >= zero {
		t.Errorf("short probations (%.1f) should beat zero probations (%.1f)", short, zero)
	}
}

func TestOptimizeFindsShortProbations(t *testing.T) {
	m := fittedModel(t)
	res := m.Optimize(rng.New(7), anneal.Config{Iterations: 15000, Restarts: 3})
	for i, p := range res.Probations {
		if p < 0.5 || p >= 60 {
			t.Errorf("Pro%d = %.1f s, want within (0.5, 60) — each much shorter than one minute", i, p)
		}
	}
	if res.Cost >= res.DefaultCost {
		t.Errorf("optimized cost %.1f >= default %.1f", res.Cost, res.DefaultCost)
	}
	if imp := res.Improvement(); imp <= 0.05 {
		t.Errorf("improvement = %.3f, want a clear gain over the default trigger", imp)
	}
	// The optimum must beat both extremes it was searched against.
	if res.Cost > m.ExpectedCost(Probations{0.5, 0.5, 0.5}) {
		t.Error("optimum worse than near-zero probations")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	m := fittedModel(t)
	a := m.Optimize(rng.New(3), anneal.Config{Iterations: 4000, Restarts: 2})
	b := m.Optimize(rng.New(3), anneal.Config{Iterations: 4000, Restarts: 2})
	if a.Probations != b.Probations || a.Cost != b.Cost {
		t.Errorf("non-deterministic optimize: %+v vs %+v", a, b)
	}
}

func TestNewFromDurations(t *testing.T) {
	m, err := NewFromDurations([]time.Duration{
		5 * time.Second, 8 * time.Second, 20 * time.Second, 10 * time.Minute,
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p := m.RecoveryCDF(9); math.Abs(p-0.5) > 0.26 {
		t.Errorf("P(9s) = %v with 2/4 samples below", p)
	}
}

func TestProbationsDurations(t *testing.T) {
	p := Probations{21, 6, 16}
	d := p.Durations()
	if d[0] != 21*time.Second || d[1] != 6*time.Second || d[2] != 16*time.Second {
		t.Errorf("Durations = %v", d)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := Options{
		OpSuccess:  [NumStages]float64{-1, 2, 0},
		OpOverhead: [NumStages]float64{-5, 1, 1},
		OpPenalty:  [NumStages]float64{-5, 1, 1},
	}
	m, err := New([]float64{1, 2, 3}, bad)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultOptions()
	for i := 0; i < NumStages; i++ {
		if m.opts.OpSuccess[i] != def.OpSuccess[i] {
			t.Errorf("OpSuccess[%d] not defaulted: %v", i, m.opts.OpSuccess[i])
		}
	}
	if m.opts.OpOverhead[0] != 0 || m.opts.OpPenalty[0] != 0 {
		t.Error("negative overhead/penalty should clamp to 0")
	}
	if m.opts.TailCap != def.TailCap {
		t.Error("TailCap not defaulted")
	}
}

func TestMeanRecoveryMatchesTailIntegral(t *testing.T) {
	m := fittedModel(t)
	mean := m.MeanRecovery()
	if mean <= 0 || mean > 3600 {
		t.Errorf("MeanRecovery = %v", mean)
	}
	// Heavy tail: mean far above median (~6 s).
	if mean < 30 {
		t.Errorf("MeanRecovery = %.1f, heavy tail should push it well above the median", mean)
	}
}

func TestImprovementEdgeCases(t *testing.T) {
	if (OptimizeResult{Cost: 10, DefaultCost: 0}).Improvement() != 0 {
		t.Error("zero default cost should yield 0 improvement")
	}
	if got := (OptimizeResult{Cost: 27.8, DefaultCost: 38}).Improvement(); math.Abs(got-0.268) > 0.01 {
		t.Errorf("paper numbers improvement = %v, want ≈0.27", got)
	}
}

func TestSensitivity(t *testing.T) {
	samples := figure10Samples(8000, 3)
	rows, err := Sensitivity(samples, DefaultOptions(), 5, anneal.Config{Iterations: 3000, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || rows[0].Name != "baseline" {
		t.Fatalf("rows = %+v", rows)
	}
	byName := map[string]SensitivityRow{}
	for _, r := range rows {
		byName[r.Name] = r
		for i, p := range r.Probations {
			if p < 0.5 || p > 90 {
				t.Errorf("%s Pro%d = %v outside search box", r.Name, i, p)
			}
		}
		if r.Cost <= 0 || r.Cost >= r.DefaultCost*1.5 {
			t.Errorf("%s cost %v vs default %v", r.Name, r.Cost, r.DefaultCost)
		}
	}
	// Doubling disruption penalties must raise the achievable cost.
	if byName["penalties-doubled"].Cost <= byName["penalties-halved"].Cost {
		t.Errorf("penalty scaling not reflected: doubled %.1f <= halved %.1f",
			byName["penalties-doubled"].Cost, byName["penalties-halved"].Cost)
	}
	// A more effective first op lowers the optimal cost.
	if byName["op1-success-0.90"].Cost > byName["op1-success-0.60"].Cost {
		t.Errorf("op success scaling not reflected: 0.90 %.1f > 0.60 %.1f",
			byName["op1-success-0.90"].Cost, byName["op1-success-0.60"].Cost)
	}
}

func TestSensitivityNoSamples(t *testing.T) {
	if _, err := Sensitivity(nil, DefaultOptions(), 1, anneal.Config{Iterations: 100}); err == nil {
		t.Error("empty samples should error")
	}
}
