// Package timp implements the time-inhomogeneous Markov process model of
// Android's three-stage Data_Stall recovery (Figure 18, Equation 1) and
// the annealing-based search for the probation triple (Pro0, Pro1, Pro2)
// that minimizes the expected recovery cost.
//
// The model follows the paper's state process: after a stall is detected
// (S0), the device either self-recovers within the current probation
// window — with a probability P_{i→e}(t) that depends on the elapsed time,
// hence *time-inhomogeneous* — or the engine escalates to the next stage
// (S1 cleanup, S2 re-register, S3 radio restart). Entering a stage
// executes its recovery operation, which fixes the stall with the
// empirical success probability (75% for the first-stage cleanup, §3.2)
// at the cost of an execution overhead and a user-disruption penalty; a
// failed operation tears connection state down, so the natural-recovery
// clock restarts (the Markov property of Figure 18: the transition out of
// S_i depends only on S_i).
//
// P_{i→e}(t) is estimated from measured Data_Stall self-recovery times
// (Figure 10's distribution), exactly as the paper estimates it from its
// duration dataset.
package timp

import (
	"errors"
	"math"
	"time"

	"repro/internal/anneal"
	"repro/internal/rng"
	"repro/internal/stats"
)

// NumStages is the number of recovery operations.
const NumStages = 3

// Probations is a probation triple in seconds.
type Probations [NumStages]float64

// Durations converts to time.Durations.
func (p Probations) Durations() [NumStages]time.Duration {
	var out [NumStages]time.Duration
	for i, v := range p {
		out[i] = time.Duration(v * float64(time.Second))
	}
	return out
}

// DefaultProbations is vanilla Android's one-minute triple.
var DefaultProbations = Probations{60, 60, 60}

// Options configures the model's operation parameters.
type Options struct {
	// OpSuccess is the per-stage fix probability (paper: cleanup fixes
	// 75% of cases once executed).
	OpSuccess [NumStages]float64
	// OpOverhead is each operation's execution time in seconds.
	OpOverhead [NumStages]float64
	// OpPenalty is each operation's user-disruption penalty in seconds
	// (cleanup drops the connection, re-registration detaches from the
	// network, a radio restart blanks the modem).
	OpPenalty [NumStages]float64
	// TailCap truncates the natural-recovery integral, seconds.
	TailCap float64
}

// DefaultOptions returns the calibration used in the reproduction.
func DefaultOptions() Options {
	return Options{
		OpSuccess:  [NumStages]float64{0.75, 0.85, 0.95},
		OpOverhead: [NumStages]float64{1, 3, 8},
		OpPenalty:  [NumStages]float64{12, 30, 60},
		TailCap:    3600,
	}
}

// Model is a fitted TIMP recovery model.
type Model struct {
	ecdf *stats.ECDF
	opts Options

	// grid caches the CDF at gridStep resolution over [0, gridMax] so the
	// annealing loop's millions of CDF lookups are O(1).
	grid []float64
	// tail caches the terminal-stage integral ∫_0^TailCap S(t) dt.
	tail float64
}

const (
	gridStep = 0.1
	gridMax  = 96.0
)

// ErrNoData is returned when no positive duration samples are supplied.
var ErrNoData = errors.New("timp: no duration samples")

// New fits a model to natural self-recovery durations (seconds).
func New(samples []float64, opts Options) (*Model, error) {
	var clean []float64
	for _, s := range samples {
		if s > 0 && !math.IsNaN(s) && !math.IsInf(s, 0) {
			clean = append(clean, s)
		}
	}
	if len(clean) == 0 {
		return nil, ErrNoData
	}
	if opts.TailCap <= 0 {
		opts.TailCap = DefaultOptions().TailCap
	}
	for i := 0; i < NumStages; i++ {
		if opts.OpSuccess[i] <= 0 || opts.OpSuccess[i] > 1 {
			opts.OpSuccess[i] = DefaultOptions().OpSuccess[i]
		}
		if opts.OpOverhead[i] < 0 {
			opts.OpOverhead[i] = 0
		}
		if opts.OpPenalty[i] < 0 {
			opts.OpPenalty[i] = 0
		}
	}
	m := &Model{ecdf: stats.NewECDF(clean), opts: opts}
	n := int(gridMax/gridStep) + 1
	m.grid = make([]float64, n)
	for i := range m.grid {
		m.grid[i] = m.ecdf.P(float64(i) * gridStep)
	}
	m.tail = m.integrateTail(opts.TailCap)
	return m, nil
}

// NewFromDurations fits a model from time.Duration samples.
func NewFromDurations(samples []time.Duration, opts Options) (*Model, error) {
	xs := make([]float64, 0, len(samples))
	for _, d := range samples {
		xs = append(xs, d.Seconds())
	}
	return New(xs, opts)
}

// RecoveryCDF returns P_{i→e}(t): the probability the device has
// self-recovered within t seconds of entering a stage.
func (m *Model) RecoveryCDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t < gridMax {
		pos := t / gridStep
		i := int(pos)
		frac := pos - float64(i)
		return m.grid[i]*(1-frac) + m.grid[i+1]*frac
	}
	return m.ecdf.P(t)
}

// integrateTail computes ∫_0^cap S(t) dt directly on the ECDF.
func (m *Model) integrateTail(cap float64) float64 {
	const steps = 480
	h := cap / steps
	sum := 0.0
	for k := 0; k < steps; k++ {
		t0 := float64(k) * h
		t1 := t0 + h
		s0 := 1 - m.ecdf.P(t0)
		s1 := 1 - m.ecdf.P(t1)
		sum += (s0 + s1) / 2 * h
	}
	return sum
}

// ExpectedCost evaluates the model objective for a probation triple: the
// expected user-perceived recovery cost in seconds.
//
// The recursion is the time-inhomogeneous part of the model: the
// probability of self-recovery during stage i's probation is conditional
// on having survived to the stage's entry time a_i, i.e.
// P_{i→e}(t) = (F(a_i+t) − F(a_i)) / S(a_i). With the heavy-tailed
// Figure 10 distribution, survivors are increasingly the long-outage kind,
// so the value of passive waiting changes from stage to stage — exactly
// why a traditional (stationary) Markov chain cannot model the process.
// Each stage's operation then fires with its overhead and disruption
// penalty, fixing the stall with probability OpSuccess[i].
func (m *Model) ExpectedCost(pro Probations) float64 {
	return m.stageCost(0, 0, pro)
}

// stageCost returns V_i(a): expected additional cost entering stage i at
// elapsed time a.
func (m *Model) stageCost(stage int, a float64, pro Probations) float64 {
	sa := 1 - m.RecoveryCDF(a)
	if sa <= 1e-12 {
		return 0 // recovery certain by now
	}
	if stage == NumStages {
		// Terminal: all operations failed; wait out the conditional tail.
		return m.conditionalWait(a, m.opts.TailCap, sa)
	}
	p := pro[stage]
	if p < 0 {
		p = 0
	}
	wait := m.conditionalWait(a, p, sa)
	surv := (1 - m.RecoveryCDF(a+p)) / sa
	if surv < 0 {
		surv = 0
	}
	next := m.stageCost(stage+1, a+p+m.opts.OpOverhead[stage], pro)
	return wait + surv*(m.opts.OpPenalty[stage]+m.opts.OpOverhead[stage]+
		(1-m.opts.OpSuccess[stage])*next)
}

// conditionalWait returns ∫_0^w S(a+t)/S(a) dt: expected waiting within a
// window of length w given survival to elapsed time a.
func (m *Model) conditionalWait(a, w, sa float64) float64 {
	if w <= 0 {
		return 0
	}
	const steps = 120
	h := w / steps
	sum := 0.0
	for k := 0; k < steps; k++ {
		t0 := a + float64(k)*h
		t1 := t0 + h
		s0 := 1 - m.RecoveryCDF(t0)
		s1 := 1 - m.RecoveryCDF(t1)
		sum += (s0 + s1) / 2 * h
	}
	return sum / sa
}

// DefaultCost evaluates the vanilla Android trigger (60 s, 60 s, 60 s).
func (m *Model) DefaultCost() float64 { return m.ExpectedCost(DefaultProbations) }

// OptimizeResult is the outcome of the annealing search.
type OptimizeResult struct {
	// Probations is the optimal triple (the paper's deployment found
	// 21 s, 6 s, 16 s on its dataset).
	Probations Probations
	// Cost is the expected recovery cost at the optimum.
	Cost float64
	// DefaultCost is the cost of the vanilla one-minute trigger (the
	// paper reports 38 s vs the optimized 27.8 s).
	DefaultCost float64
}

// Improvement returns the relative cost reduction versus the default.
func (r OptimizeResult) Improvement() float64 {
	if r.DefaultCost <= 0 {
		return 0
	}
	return 1 - r.Cost/r.DefaultCost
}

// Optimize searches for the probation triple minimizing ExpectedCost with
// simulated annealing over [0.5 s, 90 s] per stage.
func (m *Model) Optimize(r *rng.Source, cfg anneal.Config) OptimizeResult {
	lo := []float64{0.5, 0.5, 0.5}
	hi := []float64{90, 90, 90}
	x, v := anneal.Minimize(r, lo, hi, func(x []float64) float64 {
		return m.ExpectedCost(Probations{x[0], x[1], x[2]})
	}, cfg)
	return OptimizeResult{
		Probations:  Probations{x[0], x[1], x[2]},
		Cost:        v,
		DefaultCost: m.DefaultCost(),
	}
}

// MeanRecovery returns the mean of the fitted self-recovery distribution,
// capped at TailCap.
func (m *Model) MeanRecovery() float64 { return m.tail }
