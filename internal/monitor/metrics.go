package monitor

import (
	"repro/internal/failure"
	"repro/internal/metrics"
)

// Monitoring-service metrics: recorded vs. filtered event counts (the
// latter labeled by false-positive class), probe activity, and stall
// measurements. All devices across all shards share these counters, so
// the handles are resolved once at init and the per-event path is a
// single atomic add.
var (
	mRecorded = metrics.NewCounter("monitor_events_recorded_total",
		"True failure events recorded after false-positive filtering.")
	mFiltered = metrics.NewCounterVec("monitor_events_filtered_total",
		"Suspicious events discarded as false positives, by class.", "class")
	mProbeRounds = metrics.NewCounter("monitor_probe_rounds_total",
		"Network-state probing rounds issued during stall measurement.")
	mStallsMeasured = metrics.NewCounter("monitor_stalls_measured_total",
		"Data_Stall episodes whose duration was measured to completion.")
	mLegacyFallbacks = metrics.NewCounter("monitor_legacy_fallbacks_total",
		"Probing sessions that reverted to the legacy one-minute cadence.")

	// mFilteredByClass pre-resolves one handle per class so the filter
	// path never touches the family map.
	mFilteredByClass [failure.NumFalsePositiveClasses]*metrics.Counter
)

func init() {
	for c := failure.FalsePositiveClass(0); c < failure.NumFalsePositiveClasses; c++ {
		mFilteredByClass[c] = mFiltered.With(c.String())
	}
}
