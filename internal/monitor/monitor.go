// Package monitor implements Android-MOD's continuous monitoring service
// (§2.2): it registers as an event listener on the reimplemented cellular
// connection management, records in-situ radio/BS information with every
// suspicious failure event, rules out false positives (incoming voice
// calls, balance suspensions, manual disconnections, BS-overload setup
// rejections, and probe-classified system-side/DNS-side stalls), measures
// Data_Stall durations with the network-state probing component, and
// accounts its own CPU/memory/storage/network overhead against the paper's
// budget claims.
package monitor

import (
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/netprobe"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// InSitu is the device/radio context captured with each event, obtained in
// real Android via TelephonyManager and ServiceState.
type InSitu struct {
	ISP     simnet.ISPID
	Cell    telephony.CellIdentity
	Region  geo.Region
	DenseBS bool
	RAT     telephony.RAT
	Level   telephony.SignalLevel
	APN     telephony.APN
}

// Sink receives true (post-filter) failure events.
type Sink func(failure.Event)

// Overhead tallies the monitoring service's resource usage. The paper's
// budget for a low-end phone: <2% CPU within failure durations, <40 KB
// memory, <100 KB storage, <100 KB network per month (up to <8%, 2 MB,
// 20 MB, 20 MB for the heaviest <1% of devices).
type Overhead struct {
	// CPUBusy is time spent processing events and probes.
	CPUBusy time.Duration
	// FailureTime is the total duration of observed failures; CPU
	// utilization is CPUBusy/FailureTime (the paper's definition).
	FailureTime time.Duration
	// MemoryPeakBytes is the peak in-memory buffer footprint.
	MemoryPeakBytes int64
	// StorageBytes is the cumulative on-flash trace volume.
	StorageBytes int64
	// NetworkBytes is probe traffic plus uploads.
	NetworkBytes int64
}

// CPUUtilization returns CPUBusy as a fraction of observed failure time
// (0 when no failure time has been observed).
func (o Overhead) CPUUtilization() float64 {
	if o.FailureTime <= 0 {
		return 0
	}
	u := float64(o.CPUBusy) / float64(o.FailureTime)
	if u > 1 {
		u = 1
	}
	return u
}

// Cost constants for overhead accounting, sized from the paper's totals.
const (
	eventCPUCost    = 2 * time.Millisecond
	probeRoundCPU   = 300 * time.Microsecond
	eventStorage    = 64     // bytes per stored (compressed) event
	eventMemory     = 96     // bytes per buffered event
	probeRoundWire  = 3 * 64 // loopback ICMP + ICMP&DNS per server, approx
	filteredCPUCost = 500 * time.Microsecond
)

// Config tunes the service.
type Config struct {
	// Probe configures the Data_Stall probing component.
	Probe netprobe.Config
	// DisableFiltering turns off false-positive filtering (ablation):
	// every suspicious event is recorded as if it were a true failure,
	// quantifying how §2.2's filters keep the dataset clean.
	DisableFiltering bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config { return Config{Probe: netprobe.DefaultConfig()} }

// Stats counts what the service saw and filtered.
type Stats struct {
	Recorded        int
	FilteredSetup   int // false-positive Data_Setup_Error episodes
	FilteredStalls  int // probe-classified system-side/DNS stalls
	ByFPClass       [failure.NumFalsePositiveClasses]int
	ProbeRounds     int
	StallsMeasured  int
	LegacyFallbacks int
}

// Service is one device's monitoring instance.
type Service struct {
	clock *simclock.Scheduler
	cfg   Config
	sink  Sink

	deviceID       uint64
	modelID        int
	androidVersion int
	fiveG          bool

	ctx      InSitu
	host     *netprobe.SimHost
	prober   *netprobe.Prober
	engine   *android.RecoveryEngine
	detector *android.StallDetector

	stats    Stats
	overhead Overhead
	buffered int64

	// stallStart is the virtual time the active stall was detected.
	stallStart simclock.Time
	// stallTransition carries transition context for the active stall.
	stallTransition *failure.TransitionInfo
	stallAutoFix    time.Duration
	stallResolution android.Resolution
	stallOnEnd      func()
}

// New creates a monitoring service for a device. host is the device's
// network stack used by the probing component; sink receives true events.
func New(clock *simclock.Scheduler, cfg Config, deviceID uint64, modelID, androidVersion int, fiveG bool, host *netprobe.SimHost, sink Sink) *Service {
	s := &Service{
		clock:          clock,
		cfg:            cfg,
		sink:           sink,
		deviceID:       deviceID,
		modelID:        modelID,
		androidVersion: androidVersion,
		fiveG:          fiveG,
		host:           host,
	}
	s.prober = netprobe.NewProber(clock, host, cfg.Probe, s.probeDone)
	return s
}

// BindRecovery attaches the recovery engine and stall detector so the
// service can clear state when an episode ends.
func (s *Service) BindRecovery(engine *android.RecoveryEngine, detector *android.StallDetector) {
	s.engine = engine
	s.detector = detector
}

// SetContext updates the in-situ radio context (called on every
// attachment change).
func (s *Service) SetContext(ctx InSitu) { s.ctx = ctx }

// Context returns the current in-situ context.
func (s *Service) Context() InSitu { return s.ctx }

// Stats returns capture/filter counters.
func (s *Service) Stats() Stats { return s.stats }

// Overhead returns resource accounting.
func (s *Service) Overhead() Overhead { return s.overhead }

// AddNetworkBytes accounts external traffic (uploads) against the budget.
func (s *Service) AddNetworkBytes(n int64) { s.overhead.NetworkBytes += n }

// OnSetupEpisode reports a completed Data_Setup_Error episode: the final
// cause, the number of attempts, how long connectivity was lost, and the
// preceding RAT transition, if any. False positives are filtered here by
// error-code classification (§2.2).
func (s *Service) OnSetupEpisode(cause telephony.FailCause, attempts int, duration time.Duration, transition *failure.TransitionInfo) {
	if fp := failure.ClassifySetupError(cause); fp != failure.FPNone && !s.cfg.DisableFiltering {
		s.stats.FilteredSetup++
		s.stats.ByFPClass[fp]++
		mFilteredByClass[fp].Inc()
		s.overhead.CPUBusy += filteredCPUCost
		return
	}
	s.record(failure.Event{
		Kind:        failure.DataSetupError,
		Cause:       cause,
		Duration:    duration,
		OpsExecuted: attempts,
		Transition:  transition,
	})
}

// OnOutOfService reports a completed Out_of_Service episode.
func (s *Service) OnOutOfService(duration time.Duration, transition *failure.TransitionInfo) {
	s.record(failure.Event{
		Kind:       failure.OutOfService,
		Duration:   duration,
		Transition: transition,
	})
}

// OnLegacyFailure reports an SMS/voice failure (<1% of events, §3.1).
func (s *Service) OnLegacyFailure(kind failure.Kind, cause telephony.FailCause) {
	if kind != failure.SMSSendFail && kind != failure.VoiceFailure {
		return
	}
	s.record(failure.Event{Kind: kind, Cause: cause})
}

// OnStallDetected starts duration measurement for a suspicious Data_Stall.
// autoFix is the episode's natural self-recovery time (recorded for the
// Figure 10 distribution once the episode completes); transition carries
// RAT-transition context; onEnd, if non-nil, fires once when the episode
// concludes (recorded or filtered), letting the owner release episode
// resources.
func (s *Service) OnStallDetected(transition *failure.TransitionInfo, autoFix time.Duration, onEnd func()) {
	if s.prober.Active() {
		return
	}
	s.stallStart = s.clock.Now()
	s.stallTransition = transition
	s.stallAutoFix = autoFix
	s.stallOnEnd = onEnd
	s.prober.Start()
}

// StallActive reports whether a stall episode is being measured.
func (s *Service) StallActive() bool { return s.prober.Active() }

// NoteStallResolution records how the active stall was resolved (from the
// recovery engine's callback); it is folded into the recorded event.
func (s *Service) NoteStallResolution(res android.Resolution) { s.stallResolution = res }

// AbortStall cancels measurement (connection torn down mid-episode).
func (s *Service) AbortStall() {
	s.prober.Abort()
}

func (s *Service) probeDone(out netprobe.Outcome) {
	s.stats.ProbeRounds += out.Rounds
	mProbeRounds.Add(int64(out.Rounds))
	s.overhead.CPUBusy += time.Duration(out.Rounds) * probeRoundCPU
	s.overhead.NetworkBytes += int64(out.Rounds * probeRoundWire * s.numDNS())
	if out.RevertedToLegacy {
		s.stats.LegacyFallbacks++
		mLegacyFallbacks.Inc()
	}
	switch out.Verdict {
	case netprobe.VerdictSystemSideFP, netprobe.VerdictDNSFP:
		if s.cfg.DisableFiltering {
			s.record(failure.Event{Kind: failure.DataStall, Duration: out.Duration})
			s.endStallEpisode()
			break
		}
		if out.Verdict == netprobe.VerdictSystemSideFP {
			s.stats.ByFPClass[failure.FPSystemSide]++
			mFilteredByClass[failure.FPSystemSide].Inc()
		} else {
			s.stats.ByFPClass[failure.FPDNSOnly]++
			mFilteredByClass[failure.FPDNSOnly].Inc()
		}
		s.stats.FilteredStalls++
		s.endStallEpisode()
	case netprobe.VerdictRecovered:
		s.stats.StallsMeasured++
		mStallsMeasured.Inc()
		by := s.stallResolution.By
		if by == android.ResolvedNone {
			by = android.ResolvedAuto
		}
		s.record(failure.Event{
			Kind:        failure.DataStall,
			Duration:    out.Duration,
			Transition:  s.stallTransition,
			AutoFixTime: s.stallAutoFix,
			ResolvedBy:  by,
			OpsExecuted: s.stallResolution.OpsExecuted,
		})
		s.endStallEpisode()
	}
}

// endStallEpisode clears recovery machinery after the prober concluded.
func (s *Service) endStallEpisode() {
	s.stallTransition = nil
	s.stallAutoFix = 0
	s.stallResolution = android.Resolution{}
	onEnd := s.stallOnEnd
	s.stallOnEnd = nil
	if s.engine != nil && s.engine.Active() {
		// The engine learns the episode is over (it may already have
		// resolved it itself via an operation; Active() guards that).
		s.engine.NotifyResolved(android.ResolvedAuto)
	}
	if s.detector != nil {
		s.detector.ClearStall()
	}
	if onEnd != nil {
		onEnd()
	}
}

func (s *Service) numDNS() int {
	if s.host == nil || s.host.NumDNSServers < 1 {
		return 1
	}
	return s.host.NumDNSServers
}

// record stamps the event with identity, context and time, accounts
// overhead, and emits it.
func (s *Service) record(e failure.Event) {
	e.DeviceID = s.deviceID
	e.ModelID = s.modelID
	e.AndroidVersion = s.androidVersion
	e.FiveGCapable = s.fiveG
	e.ISP = s.ctx.ISP
	e.Cell = s.ctx.Cell
	e.Region = s.ctx.Region
	e.DenseBS = s.ctx.DenseBS
	e.RAT = s.ctx.RAT
	e.Level = s.ctx.Level
	if e.APN == "" {
		e.APN = s.ctx.APN
	}
	e.Start = s.clock.Now()
	if e.Kind == failure.DataStall {
		e.Start = s.stallStart
	}

	s.stats.Recorded++
	mRecorded.Inc()
	s.overhead.CPUBusy += eventCPUCost
	s.overhead.FailureTime += e.Duration
	s.overhead.StorageBytes += eventStorage
	s.buffered += eventMemory
	if s.buffered > s.overhead.MemoryPeakBytes {
		s.overhead.MemoryPeakBytes = s.buffered
	}
	if s.sink != nil {
		s.sink(e)
	}
}

// FlushBuffers simulates handing buffered events to the uploader (memory
// returns to baseline).
func (s *Service) FlushBuffers() { s.buffered = 0 }
