package monitor

import (
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/netprobe"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

type capture struct {
	events []failure.Event
}

func (c *capture) sink(e failure.Event) { c.events = append(c.events, e) }

func newService(t *testing.T) (*simclock.Scheduler, *netprobe.SimHost, *Service, *capture) {
	t.Helper()
	clock := simclock.NewScheduler()
	host := netprobe.NewSimHost(clock)
	cap := &capture{}
	s := New(clock, DefaultConfig(), 77, 12, 10, true, host, cap.sink)
	s.SetContext(InSitu{
		ISP:    simnet.ISPB,
		Cell:   telephony.CellIdentity{MCC: 460, MNC: 1, LAC: 2, CID: 3},
		Region: geo.Urban,
		RAT:    telephony.RAT4G,
		Level:  telephony.Level3,
		APN:    telephony.APNDefault,
	})
	return clock, host, s, cap
}

func TestSetupEpisodeRecordedWithInSituContext(t *testing.T) {
	clock, _, s, cap := newService(t)
	clock.At(90*time.Second, func() {
		s.OnSetupEpisode(telephony.CauseInvalidEMMState, 3, 7*time.Second, nil)
	})
	clock.RunAll()
	if len(cap.events) != 1 {
		t.Fatalf("events = %d, want 1", len(cap.events))
	}
	e := cap.events[0]
	if e.Kind != failure.DataSetupError || e.Cause != telephony.CauseInvalidEMMState {
		t.Errorf("event = %+v", e)
	}
	if e.DeviceID != 77 || e.ModelID != 12 || e.AndroidVersion != 10 || !e.FiveGCapable {
		t.Errorf("device identity not stamped: %+v", e)
	}
	if e.ISP != simnet.ISPB || e.RAT != telephony.RAT4G || e.Level != telephony.Level3 || e.Region != geo.Urban {
		t.Errorf("in-situ context not stamped: %+v", e)
	}
	if e.Start != 90*time.Second || e.Duration != 7*time.Second {
		t.Errorf("timing wrong: start %v duration %v", e.Start, e.Duration)
	}
	if e.APN != telephony.APNDefault {
		t.Errorf("APN = %q", e.APN)
	}
}

func TestSetupFalsePositivesFiltered(t *testing.T) {
	clock, _, s, cap := newService(t)
	fps := []telephony.FailCause{
		telephony.CauseCongestion,          // BS overload
		telephony.CauseVoiceCallPreemption, // incoming voice call
		telephony.CauseBillingSuspension,   // insufficient balance
		telephony.CauseManualDetach,        // manual disconnection
	}
	for _, c := range fps {
		s.OnSetupEpisode(c, 1, time.Second, nil)
	}
	clock.RunAll()
	if len(cap.events) != 0 {
		t.Fatalf("false positives leaked: %d events", len(cap.events))
	}
	st := s.Stats()
	if st.FilteredSetup != 4 {
		t.Errorf("FilteredSetup = %d, want 4", st.FilteredSetup)
	}
	if st.ByFPClass[failure.FPBSOverload] != 1 || st.ByFPClass[failure.FPVoiceCall] != 1 ||
		st.ByFPClass[failure.FPBalance] != 1 || st.ByFPClass[failure.FPManualDisconnect] != 1 {
		t.Errorf("FP class histogram = %v", st.ByFPClass)
	}
}

func TestStallMeasurementEndToEnd(t *testing.T) {
	clock, host, s, cap := newService(t)
	trans := &failure.TransitionInfo{FromRAT: telephony.RAT4G, ToRAT: telephony.RAT5G,
		FromLevel: telephony.Level4, ToLevel: telephony.Level0}
	clock.At(10*time.Second, func() {
		host.SetCondition(netprobe.NetworkDown)
		s.OnStallDetected(trans, 42*time.Second, nil)
	})
	clock.At(52*time.Second, func() { host.SetCondition(netprobe.Healthy) })
	clock.RunAll()
	if len(cap.events) != 1 {
		t.Fatalf("events = %d, want 1", len(cap.events))
	}
	e := cap.events[0]
	if e.Kind != failure.DataStall {
		t.Fatalf("kind = %v", e.Kind)
	}
	if e.Start != 10*time.Second {
		t.Errorf("stall Start = %v, want detection time", e.Start)
	}
	if e.Duration < 37*time.Second || e.Duration > 47*time.Second {
		t.Errorf("measured %v for a 42 s stall (≤5 s error expected)", e.Duration)
	}
	if e.AutoFixTime != 42*time.Second {
		t.Errorf("AutoFixTime = %v", e.AutoFixTime)
	}
	if e.Transition == nil || e.Transition.ToLevel != telephony.Level0 {
		t.Error("transition context lost")
	}
	if e.ResolvedBy != android.ResolvedAuto {
		t.Errorf("ResolvedBy = %v, want auto default", e.ResolvedBy)
	}
	if s.Stats().StallsMeasured != 1 {
		t.Errorf("StallsMeasured = %d", s.Stats().StallsMeasured)
	}
}

func TestStallSystemSideFalsePositiveFiltered(t *testing.T) {
	clock, host, s, cap := newService(t)
	host.SetCondition(netprobe.ModemDriverFailure)
	s.OnStallDetected(nil, 0, nil)
	clock.RunAll()
	if len(cap.events) != 0 {
		t.Fatal("system-side stall recorded as failure")
	}
	st := s.Stats()
	if st.FilteredStalls != 1 || st.ByFPClass[failure.FPSystemSide] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStallDNSFalsePositiveFiltered(t *testing.T) {
	clock, host, s, cap := newService(t)
	host.SetCondition(netprobe.DNSUnavailable)
	s.OnStallDetected(nil, 0, nil)
	clock.RunAll()
	if len(cap.events) != 0 {
		t.Fatal("DNS-side stall recorded as failure")
	}
	if s.Stats().ByFPClass[failure.FPDNSOnly] != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestStallResolutionFolding(t *testing.T) {
	clock, host, s, cap := newService(t)
	host.SetCondition(netprobe.NetworkDown)
	s.OnStallDetected(nil, 0, nil)
	clock.At(20*time.Second, func() {
		// The recovery engine's first op fixed it.
		s.NoteStallResolution(android.Resolution{By: android.ResolvedOp1, OpsExecuted: 1, Duration: 20 * time.Second})
		host.SetCondition(netprobe.Healthy)
	})
	clock.RunAll()
	if len(cap.events) != 1 {
		t.Fatalf("events = %d", len(cap.events))
	}
	e := cap.events[0]
	if e.ResolvedBy != android.ResolvedOp1 || e.OpsExecuted != 1 {
		t.Errorf("resolution not folded: %+v", e)
	}
	// A second stall must start from a clean slate.
	host.SetCondition(netprobe.NetworkDown)
	s.OnStallDetected(nil, 0, nil)
	clock.After(8*time.Second, func() { host.SetCondition(netprobe.Healthy) })
	clock.RunAll()
	if got := cap.events[1].ResolvedBy; got != android.ResolvedAuto {
		t.Errorf("stale resolution leaked into next episode: %v", got)
	}
}

func TestBindRecoveryClearsStateOnEpisodeEnd(t *testing.T) {
	clock, host, s, cap := newService(t)
	exec := fakeExec{clock: clock}
	var resolutions []android.Resolution
	engine := android.NewRecoveryEngine(clock, android.DefaultFixedTrigger, exec,
		func(r android.Resolution) { resolutions = append(resolutions, r) })
	det := android.NewStallDetector(clock, android.DefaultStallDetectorConfig(), nil)
	det.Start()
	s.BindRecovery(engine, det)

	host.SetCondition(netprobe.NetworkDown)
	s.OnStallDetected(nil, 9*time.Second, nil)
	engine.Start()
	clock.At(9*time.Second, func() { host.SetCondition(netprobe.Healthy) })
	clock.Run(30 * time.Second)
	if engine.Active() {
		t.Error("engine not notified when prober observed recovery")
	}
	if len(cap.events) != 1 {
		t.Fatalf("events = %d", len(cap.events))
	}
	if len(resolutions) != 1 {
		t.Fatalf("engine resolutions = %d", len(resolutions))
	}
}

type fakeExec struct{ clock *simclock.Scheduler }

func (f fakeExec) Execute(op android.RecoveryOp, done func(bool)) {
	f.clock.After(time.Second, func() { done(false) })
}

func TestOverheadAccounting(t *testing.T) {
	clock, host, s, _ := newService(t)
	for i := 0; i < 100; i++ {
		s.OnSetupEpisode(telephony.CauseSignalLost, 1, 10*time.Second, nil)
	}
	host.SetCondition(netprobe.NetworkDown)
	s.OnStallDetected(nil, 0, nil)
	clock.At(30*time.Second, func() { host.SetCondition(netprobe.Healthy) })
	clock.RunAll()
	o := s.Overhead()
	if o.StorageBytes != 101*64 {
		t.Errorf("StorageBytes = %d", o.StorageBytes)
	}
	if o.NetworkBytes == 0 {
		t.Error("probe traffic not accounted")
	}
	if o.MemoryPeakBytes == 0 {
		t.Error("memory not accounted")
	}
	util := o.CPUUtilization()
	if util <= 0 || util >= 0.02 {
		t.Errorf("CPU utilization = %.4f, want (0, 2%%) per the paper budget", util)
	}
	s.FlushBuffers()
	s.OnSetupEpisode(telephony.CauseSignalLost, 1, time.Second, nil)
	if got := s.Overhead().MemoryPeakBytes; got != o.MemoryPeakBytes {
		t.Errorf("peak should persist after flush: %d vs %d", got, o.MemoryPeakBytes)
	}
}

func TestCPUUtilizationEdgeCases(t *testing.T) {
	if (Overhead{}).CPUUtilization() != 0 {
		t.Error("zero failure time should yield 0 utilization")
	}
	o := Overhead{CPUBusy: 2 * time.Second, FailureTime: time.Second}
	if o.CPUUtilization() != 1 {
		t.Error("utilization should clamp at 1")
	}
}

func TestLegacyFailures(t *testing.T) {
	clock, _, s, cap := newService(t)
	s.OnLegacyFailure(failure.SMSSendFail, telephony.CauseNetworkFailure)
	s.OnLegacyFailure(failure.VoiceFailure, telephony.CauseNetworkFailure)
	s.OnLegacyFailure(failure.DataStall, telephony.CauseNetworkFailure) // wrong kind: ignored
	clock.RunAll()
	if len(cap.events) != 2 {
		t.Fatalf("events = %d, want 2", len(cap.events))
	}
	if cap.events[0].Kind != failure.SMSSendFail || cap.events[1].Kind != failure.VoiceFailure {
		t.Errorf("kinds = %v, %v", cap.events[0].Kind, cap.events[1].Kind)
	}
}

func TestOutOfServiceRecorded(t *testing.T) {
	clock, _, s, cap := newService(t)
	s.OnOutOfService(45*time.Second, nil)
	clock.RunAll()
	if len(cap.events) != 1 || cap.events[0].Kind != failure.OutOfService {
		t.Fatalf("events = %+v", cap.events)
	}
	if cap.events[0].Duration != 45*time.Second {
		t.Errorf("duration = %v", cap.events[0].Duration)
	}
}

func TestDoubleStallDetectionIgnored(t *testing.T) {
	clock, host, s, cap := newService(t)
	host.SetCondition(netprobe.NetworkDown)
	s.OnStallDetected(nil, 0, nil)
	s.OnStallDetected(nil, 0, nil) // duplicate while active: ignored
	clock.At(8*time.Second, func() { host.SetCondition(netprobe.Healthy) })
	clock.RunAll()
	if len(cap.events) != 1 {
		t.Fatalf("events = %d, want 1", len(cap.events))
	}
}

func TestAbortStall(t *testing.T) {
	clock, host, s, cap := newService(t)
	host.SetCondition(netprobe.NetworkDown)
	s.OnStallDetected(nil, 0, nil)
	clock.At(7*time.Second, func() { s.AbortStall() })
	clock.Run(100 * time.Second)
	if len(cap.events) != 0 {
		t.Fatal("aborted stall produced an event")
	}
	if s.StallActive() {
		t.Error("stall still active after abort")
	}
}
