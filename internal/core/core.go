// Package core ties the reproduction together: it runs the nationwide
// measurement study (fleet simulation standing in for the paper's 70M
// devices), analyzes the collected dataset into every table and figure,
// fits the TIMP recovery model to the measured Data_Stall self-recovery
// times and searches the optimal probation triple with simulated
// annealing, and evaluates the two deployed enhancements A/B — exactly the
// §2 → §3 → §4 pipeline of the paper.
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/android"
	"repro/internal/anneal"
	"repro/internal/device"
	"repro/internal/failure"
	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/timp"
)

// Study is a configured reproduction run.
type Study struct {
	// Scenario is the fleet configuration; zero values take defaults.
	Scenario fleet.Scenario
}

// MeasurementResult is the outcome of the §3 measurement phase.
type MeasurementResult struct {
	Fleet *fleet.Result
	Input analysis.Input
}

// Measure runs the continuous-monitoring fleet under vanilla Android
// behaviour (the paper's Jan.–Aug. 2020 study).
func (s Study) Measure() (*MeasurementResult, error) {
	res, err := fleet.Run(s.Scenario)
	if err != nil {
		return nil, fmt.Errorf("core: measurement run: %w", err)
	}
	return &MeasurementResult{Fleet: res, Input: analysis.FromResult(res)}, nil
}

// Catalogue exposes the Table 1 model catalogue in the analysis package's
// terms.
func Catalogue() []analysis.ModelCatalogueEntry {
	out := make([]analysis.ModelCatalogueEntry, 0, device.NumModels)
	for _, m := range device.Models() {
		out = append(out, analysis.ModelCatalogueEntry{
			ID: m.ID, CPUGHz: m.CPUGHz, MemoryGB: m.MemoryGB, StorageGB: m.StorageGB,
			FiveG: m.FiveG, Android: m.Android,
			Prevalence: m.Prevalence, Frequency: m.Frequency,
		})
	}
	return out
}

// RecoveryOptimization is the outcome of fitting TIMP to measured stall
// data and searching for the optimal probations (§4.2).
type RecoveryOptimization struct {
	Result timp.OptimizeResult
	// Trigger is the optimized probation trigger, ready to deploy.
	Trigger android.ProfileTrigger
	// Samples is the number of self-recovery duration samples used.
	Samples int
}

// OptimizeRecovery fits the TIMP model to the measurement's Data_Stall
// self-recovery times (measured by the Android-MOD probing component) and
// anneals the probation triple. The paper's dataset yielded
// (21 s, 6 s, 16 s) with an expected recovery time of 27.8 s versus 38 s
// for the one-minute default.
func OptimizeRecovery(m *MeasurementResult, seed int64) (*RecoveryOptimization, error) {
	var samples []float64
	m.Input.Dataset.Each(func(e *failure.Event) {
		if e.Kind == failure.DataStall && e.AutoFixTime > 0 {
			samples = append(samples, e.AutoFixTime.Seconds())
		}
	})
	// Fit against the *measured* operation effectiveness, exactly as the
	// paper estimated its 75% first-stage fix rate from its dataset.
	opts := timp.DefaultOptions()
	est := analysis.EstimateOpSuccess(m.Input)
	for i := 0; i < 3; i++ {
		if est.Executions[i] >= 50 && est.Rates[i] > 0 {
			opts.OpSuccess[i] = est.Rates[i]
		}
	}
	model, err := timp.New(samples, opts)
	if err != nil {
		return nil, fmt.Errorf("core: fit TIMP model: %w", err)
	}
	res := model.Optimize(rng.New(seed), anneal.Config{})
	var trig android.ProfileTrigger
	d := res.Probations.Durations()
	copy(trig[:], d[:])
	return &RecoveryOptimization{Result: res, Trigger: trig, Samples: len(samples)}, nil
}

// EnhancementResult is the §4.3 deployment evaluation.
type EnhancementResult struct {
	Vanilla *fleet.Result
	Patched *fleet.Result
	Report  analysis.EnhancementReport
}

// EvaluateEnhancements re-runs the fleet with the stability-compatible
// RAT transition policy, 4G/5G dual connectivity and the given recovery
// trigger, and compares against the vanilla measurement.
func EvaluateEnhancements(m *MeasurementResult, trigger android.ProfileTrigger) (*EnhancementResult, error) {
	patched, err := fleet.Run(m.Fleet.Scenario.Patched(trigger))
	if err != nil {
		return nil, fmt.Errorf("core: patched run: %w", err)
	}
	report := analysis.CompareEnhancement(m.Input, analysis.FromResult(patched))
	return &EnhancementResult{Vanilla: m.Fleet, Patched: patched, Report: report}, nil
}

// FullPipeline runs measure → optimize → evaluate with one call, the
// complete reproduction loop.
func FullPipeline(scenario fleet.Scenario) (*MeasurementResult, *RecoveryOptimization, *EnhancementResult, error) {
	study := Study{Scenario: scenario}
	m, err := study.Measure()
	if err != nil {
		return nil, nil, nil, err
	}
	opt, err := OptimizeRecovery(m, scenario.Seed+1)
	if err != nil {
		return m, nil, nil, err
	}
	enh, err := EvaluateEnhancements(m, opt.Trigger)
	if err != nil {
		return m, opt, nil, err
	}
	return m, opt, enh, nil
}
