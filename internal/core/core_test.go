package core

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/trace"
)

func TestFullPipeline(t *testing.T) {
	scenario := fleet.Scenario{Seed: 3, NumDevices: 1500, Workers: 4}
	m, opt, enh, err := FullPipeline(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fleet.Dataset.Len() == 0 {
		t.Fatal("measurement produced no events")
	}
	if opt.Samples == 0 {
		t.Fatal("no stall samples for the TIMP fit")
	}
	// The optimized probations are each much shorter than one minute.
	for i, p := range opt.Trigger {
		if p <= 0 || p >= time.Minute {
			t.Errorf("Pro%d = %v, want in (0, 60s)", i, p)
		}
	}
	if opt.Result.Cost >= opt.Result.DefaultCost {
		t.Errorf("optimized cost %.1f >= default %.1f", opt.Result.Cost, opt.Result.DefaultCost)
	}
	// The enhancements must reduce 5G failures and stall durations.
	if enh.Report.FiveGFrequencyChange >= -0.1 {
		t.Errorf("5G frequency change = %+.2f, want a clear reduction", enh.Report.FiveGFrequencyChange)
	}
	if enh.Report.StallDurationChange >= -0.1 {
		t.Errorf("stall duration change = %+.2f, want a clear reduction", enh.Report.StallDurationChange)
	}
	if enh.Patched.Scenario.Policy != fleet.PolicyStability {
		t.Error("patched run did not use the stability policy")
	}
}

func TestCatalogue(t *testing.T) {
	cat := Catalogue()
	if len(cat) != 34 {
		t.Fatalf("catalogue = %d entries", len(cat))
	}
	fiveG := 0
	for _, m := range cat {
		if m.FiveG {
			fiveG++
		}
	}
	if fiveG != 4 {
		t.Errorf("5G models = %d, want 4", fiveG)
	}
}

func TestOptimizeRecoveryNoStalls(t *testing.T) {
	m := &MeasurementResult{
		Fleet: &fleet.Result{Dataset: trace.NewDataset()},
	}
	m.Input.Dataset = m.Fleet.Dataset
	if _, err := OptimizeRecovery(m, 1); err == nil {
		t.Error("empty dataset should fail the TIMP fit")
	}
}

func TestMeasureInvalidScenario(t *testing.T) {
	s := Study{Scenario: fleet.Scenario{NumDevices: 10, UploadAddr: "127.0.0.1:1"}}
	if _, err := s.Measure(); err == nil {
		t.Error("unreachable collector should surface an error")
	}
}
