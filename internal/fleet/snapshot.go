package fleet

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"repro/internal/failure"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Snapshot is the serializable form of a fleet Result, so cmd tools can
// simulate once and analyze many times.
type Snapshot struct {
	// ScenarioSeed etc. record how the run was produced.
	ScenarioSeed int64
	NumDevices   int
	Window       time.Duration
	PolicyName   string
	TriggerName  string

	Events      []failure.Event
	Population  Population
	Transitions TransitionMatrix
	Dwell       DwellStats
	Stations    []simnet.BaseStation
	Monitor     monitorStatsSnapshot
	Overhead    OverheadSummary
}

// monitorStatsSnapshot mirrors monitor.Stats with exported gob-friendly
// fields only.
type monitorStatsSnapshot struct {
	Recorded        int
	FilteredSetup   int
	FilteredStalls  int
	ByFPClass       [failure.NumFalsePositiveClasses]int
	ProbeRounds     int
	StallsMeasured  int
	LegacyFallbacks int
}

// Snapshot converts a Result for persistence.
func (r *Result) Snapshot() *Snapshot {
	s := &Snapshot{
		ScenarioSeed: r.Scenario.Seed,
		NumDevices:   r.Scenario.NumDevices,
		Window:       r.Scenario.Window,
		PolicyName:   r.Scenario.Policy.String(),
		TriggerName:  r.Scenario.Trigger.Name(),
		Events:       r.Dataset.Events(),
		Population:   r.Population,
		Transitions:  r.Transitions,
		Dwell:        r.Dwell,
		Monitor: monitorStatsSnapshot{
			Recorded:        r.Monitor.Recorded,
			FilteredSetup:   r.Monitor.FilteredSetup,
			FilteredStalls:  r.Monitor.FilteredStalls,
			ByFPClass:       r.Monitor.ByFPClass,
			ProbeRounds:     r.Monitor.ProbeRounds,
			StallsMeasured:  r.Monitor.StallsMeasured,
			LegacyFallbacks: r.Monitor.LegacyFallbacks,
		},
		Overhead: r.Overhead,
	}
	for _, bs := range r.Network.Stations {
		s.Stations = append(s.Stations, *bs)
	}
	return s
}

// Restore rebuilds an analyzable Result. The scenario carries only the
// recorded identifying fields; it cannot be re-run as-is.
func (s *Snapshot) Restore() *Result {
	ds := trace.FromEvents(s.Events)
	stations := make([]*simnet.BaseStation, len(s.Stations))
	for i := range s.Stations {
		bs := s.Stations[i]
		stations[i] = &bs
	}
	res := &Result{
		Scenario:    Scenario{Seed: s.ScenarioSeed, NumDevices: s.NumDevices, Window: s.Window}.withDefaults(),
		Dataset:     ds,
		Population:  s.Population,
		Transitions: s.Transitions,
		Dwell:       s.Dwell,
		Network:     simnet.FromStations(stations),
		Overhead:    s.Overhead,
	}
	res.Monitor.Recorded = s.Monitor.Recorded
	res.Monitor.FilteredSetup = s.Monitor.FilteredSetup
	res.Monitor.FilteredStalls = s.Monitor.FilteredStalls
	res.Monitor.ByFPClass = s.Monitor.ByFPClass
	res.Monitor.ProbeRounds = s.Monitor.ProbeRounds
	res.Monitor.StallsMeasured = s.Monitor.StallsMeasured
	res.Monitor.LegacyFallbacks = s.Monitor.LegacyFallbacks
	return res
}

// SaveResult persists a result as gzip+gob.
func SaveResult(path string, r *Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	if err := gob.NewEncoder(zw).Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// LoadResult reads a result saved by SaveResult.
func LoadResult(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("fleet: open snapshot: %w", err)
	}
	defer zr.Close()
	var s Snapshot
	if err := gob.NewDecoder(zr).Decode(&s); err != nil {
		return nil, fmt.Errorf("fleet: decode snapshot: %w", err)
	}
	return s.Restore(), nil
}
