package fleet

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/trace"
)

// ingestChaosCampaign stresses the upload path only: no radio-layer rules,
// so the simulated event stream is identical to a calm run and any dataset
// discrepancy is the transport's fault.
func ingestChaosCampaign() *faultinject.Campaign {
	return &faultinject.Campaign{
		Name: "ingest-chaos",
		Rules: []faultinject.Rule{
			// ack-loss first: it is the only class that stores the batch
			// and then loses the ack, so it must actually fire for the
			// dedup side of the invariant to be exercised.
			{Name: "lost-acks", Class: faultinject.ClassAckLoss, Intensity: 0.6},
			{Name: "outage", Class: faultinject.ClassCollectorOutage, Intensity: 0.35},
			{Name: "flaky", Class: faultinject.ClassLinkFlaky, Intensity: 0.35},
		},
	}
}

// TestNetworkChaosExactlyOnceAcrossWorkers is invariant I4 end to end:
// under injected dial failures, lost acks, and a flaky link, the collector
// dataset's event multiset must equal the union of what the devices
// recorded — nothing lost, nothing duplicated — and must be identical for
// any worker count.
func TestNetworkChaosExactlyOnceAcrossWorkers(t *testing.T) {
	type outcome struct {
		uploaded trace.Digest
		events   int
	}
	var outcomes []outcome
	for _, workers := range []int{1, 4} {
		ds := trace.NewDataset()
		col, err := trace.NewCollector("127.0.0.1:0", ds)
		if err != nil {
			t.Fatal(err)
		}
		s := Scenario{Seed: 77, NumDevices: 150, Workers: workers}
		s.UploadAddr = col.Addr()
		s.Faults = ingestChaosCampaign()
		res, err := Run(s)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		col.Drain(2 * time.Second)

		if res.RecordedEvents == 0 {
			t.Fatalf("workers=%d: no events recorded", workers)
		}
		if res.Faults == nil || res.Faults.TotalInjected() == 0 {
			t.Fatalf("workers=%d: campaign injected no transport faults — the invariant was not stressed", workers)
		}
		if n := res.Faults.Unresolved(); n != 0 {
			t.Errorf("workers=%d: %d unresolved transport fault episodes\n%s", workers, n, res.Faults)
		}
		up := ds.MultisetDigest()
		if up != res.RecordedDigest {
			t.Errorf("workers=%d: collector multiset %s != device-recorded multiset %s",
				workers, up, res.RecordedDigest)
		}
		if int64(ds.Len()) != res.RecordedEvents {
			t.Errorf("workers=%d: collector holds %d events, devices recorded %d",
				workers, ds.Len(), res.RecordedEvents)
		}
		if col.DedupHits() == 0 {
			t.Errorf("workers=%d: no dedup hits — retries never replayed a stored batch, so the campaign was too gentle", workers)
		}
		outcomes = append(outcomes, outcome{uploaded: up, events: ds.Len()})
	}
	if outcomes[0].uploaded != outcomes[1].uploaded {
		t.Errorf("dataset multiset differs across worker counts: %s vs %s",
			outcomes[0].uploaded, outcomes[1].uploaded)
	}
	if outcomes[0].events != outcomes[1].events {
		t.Errorf("dataset size differs across worker counts: %d vs %d",
			outcomes[0].events, outcomes[1].events)
	}
}

// TestKillRestartExactlyOnceAcrossWorkers is invariant I4 across a
// collector crash: a segment-store-backed collector is SIGKILLed
// mid-campaign (no drain, no seal, no final checkpoint), rebooted from
// the replayed store on the same address, and the devices' backoff/WAL
// retries carry the rest of the fleet across the outage. The final
// dataset must still equal the device-recorded multiset exactly, for
// every worker count.
func TestKillRestartExactlyOnceAcrossWorkers(t *testing.T) {
	var digests []trace.Digest
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		st, err := trace.OpenSegStore(dir, trace.SegStoreOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ds := trace.NewDataset()
		col, err := trace.NewCollectorWith("127.0.0.1:0", ds, trace.CollectorOptions{Store: st})
		if err != nil {
			t.Fatal(err)
		}
		addr := col.Addr()

		// Kill once a few hundred events are durable, then reboot from
		// disk on the same address.
		type gen struct {
			col *trace.Collector
			ds  *trace.Dataset
			st  *trace.SegStore
		}
		restarted := make(chan gen, 1)
		go func() {
			for ds.Len() < 300 {
				time.Sleep(time.Millisecond)
			}
			col.Kill()
			st.Kill()
			ds2 := trace.NewDataset()
			st2, err := trace.OpenSegStore(dir, trace.SegStoreOptions{}, trace.ReplayInto(ds2))
			if err != nil {
				t.Errorf("workers=%d: store reboot: %v", workers, err)
				restarted <- gen{}
				return
			}
			var col2 *trace.Collector
			for i := 0; i < 200; i++ {
				col2, err = trace.NewCollectorWith(addr, ds2, trace.CollectorOptions{Store: st2})
				if err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err != nil {
				t.Errorf("workers=%d: collector reboot: %v", workers, err)
				restarted <- gen{}
				return
			}
			restarted <- gen{col: col2, ds: ds2, st: st2}
		}()

		s := Scenario{Seed: 77, NumDevices: 150, Workers: workers}
		s.UploadAddr = addr
		s.Faults = ingestChaosCampaign()
		res, err := Run(s)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		g := <-restarted
		if g.col == nil {
			t.Fatalf("workers=%d: restart failed", workers)
		}
		g.col.Drain(2 * time.Second)
		if err := g.st.Close(); err != nil {
			t.Fatalf("workers=%d: store close: %v", workers, err)
		}

		if res.RecordedEvents == 0 {
			t.Fatalf("workers=%d: no events recorded", workers)
		}
		up := g.ds.MultisetDigest()
		if up != res.RecordedDigest || int64(g.ds.Len()) != res.RecordedEvents {
			t.Errorf("workers=%d: collector holds %d events digest %s, devices recorded %d digest %s",
				workers, g.ds.Len(), up, res.RecordedEvents, res.RecordedDigest)
		}

		// A fresh replay of the closed store must reproduce the dataset:
		// the crash left nothing only-in-memory.
		replayed := trace.NewDataset()
		st3, err := trace.OpenSegStore(dir, trace.SegStoreOptions{}, trace.ReplayInto(replayed))
		if err != nil {
			t.Fatal(err)
		}
		if replayed.MultisetDigest() != up {
			t.Errorf("workers=%d: replayed multiset %s != stored %s", workers, replayed.MultisetDigest(), up)
		}
		st3.Close()
		digests = append(digests, up)
	}
	if digests[0] != digests[1] {
		t.Errorf("dataset multiset differs across worker counts: %s vs %s", digests[0], digests[1])
	}
}

// TestUploadSpillKeepsAllEvents forces every shard's backlog through the
// on-disk WAL (tiny in-memory limit, WiFi off for the whole run) and
// asserts the collector still receives the exact recorded multiset.
func TestUploadSpillKeepsAllEvents(t *testing.T) {
	ds := trace.NewDataset()
	col, err := trace.NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	s := Scenario{Seed: 9, NumDevices: 120, Workers: 3}
	s.UploadAddr = col.Addr()
	s.UploadBufferLimit = 50
	s.UploadSpillDir = t.TempDir()
	res := runFleet(t, s)
	col.Drain(2 * time.Second)

	if ds.MultisetDigest() != res.RecordedDigest {
		t.Errorf("collector multiset %s != recorded %s", ds.MultisetDigest(), res.RecordedDigest)
	}
	if int64(ds.Len()) != res.RecordedEvents {
		t.Errorf("collector holds %d events, devices recorded %d", ds.Len(), res.RecordedEvents)
	}
}
