package fleet

import (
	"fmt"
	"time"

	"repro/internal/android"
	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/monitor"
	"repro/internal/simnet"
	"repro/internal/telephony"
	"repro/internal/trace"
)

// PolicyMode selects the fleet-wide RAT selection policy.
type PolicyMode int

// Policy modes.
const (
	// PolicyVanilla runs each device's stock policy: Android9Policy on
	// Android 9 models, Android10Policy (blind 5G preference) on
	// Android 10 models. This is the measurement-study configuration.
	PolicyVanilla PolicyMode = iota
	// PolicyStability runs the paper's stability-compatible RAT
	// transition enhancement on every device.
	PolicyStability
	// PolicyNever5G is an ablation that refuses 5G entirely.
	PolicyNever5G
)

func (p PolicyMode) String() string {
	switch p {
	case PolicyVanilla:
		return "vanilla"
	case PolicyStability:
		return "stability-compatible"
	case PolicyNever5G:
		return "never-5g"
	default:
		return "?"
	}
}

// Scenario configures one fleet run.
type Scenario struct {
	// Seed makes the run reproducible.
	Seed int64
	// NumDevices is the fleet size (the paper had 70M; thousands are
	// enough to reproduce every distribution shape).
	NumDevices int
	// Window is the measurement window (default: the paper's 8 months).
	Window time.Duration
	// NumBS is the deployment size (default NumDevices/2, min 200).
	NumBS int
	// Policy selects the RAT policy variant.
	Policy PolicyMode
	// Trigger is the Data_Stall recovery trigger (default: vanilla
	// Android's one-minute FixedTrigger; the TIMP enhancement passes a
	// ProfileTrigger).
	Trigger android.Trigger
	// DualConnectivity enables 4G/5G dual connectivity on 5G models.
	DualConnectivity bool
	// Workers shards devices across goroutines (default GOMAXPROCS-ish 4).
	Workers int
	// Calibration overrides generator parameters (zero value: defaults).
	Calibration *Calibration
	// UploadAddr, when set, makes each shard upload its events to a
	// trace.Collector at this address over TCP instead of appending to
	// the in-memory dataset directly.
	UploadAddr string
	// UploadRouter, when set, routes each shard uploader by device ID
	// instead of the fixed UploadAddr: the initial target comes from the
	// router, and the uploader re-resolves on wrong-collector redirects
	// — the hook that points a Scenario at a collector fleet (see
	// internal/trace/ring). Takes precedence over UploadAddr.
	UploadRouter trace.TargetRouter
	// UploadDialect selects the wire encoding shard uploaders speak:
	// "v3" (default, the binary codec) or "v2" (sequenced gob frames,
	// kept for mixed-fleet rollouts and as the benchmark baseline).
	UploadDialect string
	// UploadBufferLimit caps each shard uploader's in-memory backlog
	// (events); past it the backlog spills to UploadSpillDir, or sheds
	// oldest-first if no spill dir is set. 0 means unbounded.
	UploadBufferLimit int
	// UploadSpillDir, when set with UploadAddr, gives each shard uploader
	// an on-disk WAL for backlog past UploadBufferLimit, so a long
	// collector outage degrades to disk instead of dropping events.
	UploadSpillDir string
	// MaxEventsPerDevice caps runaway heavy-tail devices (default 200k,
	// matching the paper's observed 198,228 maximum).
	MaxEventsPerDevice int
	// DisableFPFilter turns off the monitor's false-positive filtering
	// (ablation: measures dataset pollution without §2.2's filters).
	DisableFPFilter bool
	// Outages inject correlated regional failures: every device camped in
	// the region during the window suffers extra stall episodes (a BS "in
	// disrepair", §3.1's long-neglected infrastructure).
	Outages []Outage
	// Faults superimposes a deterministic fault campaign — BS blackouts
	// and flaps, RSS degradation windows, control-plane error storms, RAT
	// downgrades, stall storms — on the generated environment. Nil runs
	// the calm calibrated environment; see internal/faultinject.
	Faults *faultinject.Campaign

	// legacyShardQueue runs each worker's devices interleaved on one shared
	// event queue (the pre-lane architecture) instead of one device at a
	// time on a reused lane. Kept unexported: it exists as the benchmark
	// baseline and the equivalence oracle for the lane runner, not as a
	// supported configuration.
	legacyShardQueue bool
}

// Outage is a scheduled regional infrastructure failure.
type Outage struct {
	Region geo.Region
	Start  time.Duration
	// Window is how long the outage lasts.
	Window time.Duration
	// EpisodesPerDevice is the expected number of extra stall episodes a
	// device exposed to the region during the window experiences.
	EpisodesPerDevice float64
}

// EightMonths is the paper's measurement window (Jan.-Aug. 2020).
const EightMonths = 8 * 30 * 24 * time.Hour

func (s Scenario) withDefaults() Scenario {
	if s.NumDevices <= 0 {
		s.NumDevices = 2000
	}
	if s.Window <= 0 {
		s.Window = EightMonths
	}
	if s.NumBS <= 0 {
		s.NumBS = s.NumDevices / 2
		if s.NumBS < 200 {
			s.NumBS = 200
		}
	}
	if s.Trigger == nil {
		s.Trigger = android.DefaultFixedTrigger
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Calibration == nil {
		c := DefaultCalibration()
		s.Calibration = &c
	}
	if s.MaxEventsPerDevice <= 0 {
		s.MaxEventsPerDevice = 200000
	}
	return s
}

// Normalized returns the scenario with all defaults applied — the exact
// configuration Run will execute. Front-ends use it to report true device
// counts and windows instead of zero-valued config fields.
func (s Scenario) Normalized() Scenario { return s.withDefaults() }

// Patched returns a copy of the scenario with both §4.2 enhancements
// enabled: the stability-compatible RAT policy with dual connectivity and
// the TIMP-based recovery trigger.
func (s Scenario) Patched(trigger android.ProfileTrigger) Scenario {
	s.Policy = PolicyStability
	s.DualConnectivity = true
	s.Trigger = trigger
	return s
}

// ratIdx indexes arrays by RAT (0 = unknown, 1..4 = 2G..5G).
const numRATIdx = 5

// TransitionMatrix accumulates RAT-transition exposures and transition-
// induced failures per (fromRAT, fromLevel) → (toRAT, toLevel) — the raw
// material of Figure 17.
type TransitionMatrix struct {
	Exposure [numRATIdx][telephony.NumSignalLevels][numRATIdx][telephony.NumSignalLevels]int64
	Failures [numRATIdx][telephony.NumSignalLevels][numRATIdx][telephony.NumSignalLevels]int64
}

// Add accumulates other into m.
func (m *TransitionMatrix) Add(other *TransitionMatrix) {
	for a := 0; a < numRATIdx; a++ {
		for b := 0; b < telephony.NumSignalLevels; b++ {
			for c := 0; c < numRATIdx; c++ {
				for d := 0; d < telephony.NumSignalLevels; d++ {
					m.Exposure[a][b][c][d] += other.Exposure[a][b][c][d]
					m.Failures[a][b][c][d] += other.Failures[a][b][c][d]
				}
			}
		}
	}
}

// FailureRate returns failures per exposure for a transition, and whether
// the transition was observed at all.
func (m *TransitionMatrix) FailureRate(fromRAT telephony.RAT, fromLvl telephony.SignalLevel, toRAT telephony.RAT, toLvl telephony.SignalLevel) (float64, bool) {
	e := m.Exposure[fromRAT][fromLvl][toRAT][toLvl]
	if e == 0 {
		return 0, false
	}
	return float64(m.Failures[fromRAT][fromLvl][toRAT][toLvl]) / float64(e), true
}

// DwellStats accumulates connected time and device exposure per RAT and
// signal level — the denominators of the normalized prevalence in
// Figures 15 and 16.
type DwellStats struct {
	// Seconds of connected time by [RAT][level].
	Seconds [numRATIdx][telephony.NumSignalLevels]float64
	// DevicesExposed counts devices that dwelled at [RAT][level].
	DevicesExposed [numRATIdx][telephony.NumSignalLevels]int64
	// DevicesOnRAT counts devices that ever camped on each RAT.
	DevicesOnRAT [numRATIdx]int64
	// DevicesOnBSRAT counts devices that ever camped on a BS supporting
	// each RAT (Figure 14's denominator).
	DevicesOnBSRAT [numRATIdx]int64
}

// Add accumulates other into d.
func (d *DwellStats) Add(other *DwellStats) {
	for a := 0; a < numRATIdx; a++ {
		d.DevicesOnRAT[a] += other.DevicesOnRAT[a]
		d.DevicesOnBSRAT[a] += other.DevicesOnBSRAT[a]
		for b := 0; b < telephony.NumSignalLevels; b++ {
			d.Seconds[a][b] += other.Seconds[a][b]
			d.DevicesExposed[a][b] += other.DevicesExposed[a][b]
		}
	}
}

// Population records fleet composition — the denominators for prevalence
// computations.
type Population struct {
	Total    int
	ByModel  [35]int // 1-based model IDs
	ByISP    [simnet.NumISPs]int
	FiveG    int
	Android9 int
	// Android10No5G counts Android 10 devices without 5G hardware (the
	// paper's footnote-4 fair-comparison group).
	Android10No5G int
}

// Add accumulates other into p.
func (p *Population) Add(other *Population) {
	p.Total += other.Total
	p.FiveG += other.FiveG
	p.Android9 += other.Android9
	p.Android10No5G += other.Android10No5G
	for i := range p.ByModel {
		p.ByModel[i] += other.ByModel[i]
	}
	for i := range p.ByISP {
		p.ByISP[i] += other.ByISP[i]
	}
}

// OverheadSummary aggregates per-device monitoring overheads.
type OverheadSummary struct {
	Devices            int
	MeanCPUUtilization float64
	MaxCPUUtilization  float64
	MaxMemoryBytes     int64
	MaxStorageBytes    int64
	MaxNetworkBytes    int64
	TotalNetworkBytes  int64
}

// IntegrityReport checks, after the clock drains, that every device ended
// the run inside the Figure-1 state machine: the data connection parked in
// Inactive or Active, no setup episode still in flight. OpenEpisodes
// counts devices whose current episode (stall or Out_of_Service) was still
// running when the window closed — legal for organic heavy-tail episodes,
// which can outlast the run, so it is informational rather than a wedge.
type IntegrityReport struct {
	// Wedged counts devices whose DataConnection finished outside
	// {Inactive, Active} — a state-machine leak.
	Wedged int
	// OpenSetups counts devices with a setup episode that never concluded.
	OpenSetups int
	// OpenEpisodes counts devices still busy with a stall/OOS episode.
	OpenEpisodes int
}

// Add accumulates other into r.
func (r *IntegrityReport) Add(other *IntegrityReport) {
	r.Wedged += other.Wedged
	r.OpenSetups += other.OpenSetups
	r.OpenEpisodes += other.OpenEpisodes
}

// Clean reports whether every device ended inside the state machine.
func (r *IntegrityReport) Clean() bool { return r.Wedged == 0 && r.OpenSetups == 0 }

// Result is a completed fleet run.
type Result struct {
	Scenario    Scenario
	Dataset     *trace.Dataset
	Population  Population
	Transitions TransitionMatrix
	Dwell       DwellStats
	Monitor     monitor.Stats
	Overhead    OverheadSummary
	// Network is the generated deployment (BS census for Figures 11/14).
	Network *simnet.Network
	// Integrity is the post-run state-machine check over all devices.
	Integrity IntegrityReport
	// Faults is the campaign execution report (nil for calm runs).
	Faults *faultinject.Report
	// RecordedDigest and RecordedEvents summarize, for uploading runs,
	// the multiset of events the device fleet recorded before the
	// network could lose or duplicate anything. Comparing them against
	// the collector dataset's MultisetDigest/Len is the chaos invariant
	// I4: ingestion is exactly-once end to end.
	RecordedDigest trace.Digest
	RecordedEvents int64
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("fleet run: %d devices, %d BSes, %d events (policy=%v trigger=%s)",
		r.Population.Total, len(r.Network.Stations), r.Dataset.Len(),
		r.Scenario.Policy, r.Scenario.Trigger.Name())
}
