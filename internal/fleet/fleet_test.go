package fleet

import (
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/device"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/telephony"
	"repro/internal/trace"
)

func runFleet(t *testing.T, s Scenario) *Result {
	t.Helper()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseScenario(n int) Scenario {
	return Scenario{Seed: 42, NumDevices: n, Workers: 4}
}

func TestRunProducesEvents(t *testing.T) {
	res := runFleet(t, baseScenario(800))
	if res.Dataset.Len() == 0 {
		t.Fatal("no events produced")
	}
	if res.Population.Total != 800 {
		t.Errorf("population = %d", res.Population.Total)
	}
	if len(res.Network.Stations) == 0 {
		t.Error("no deployment")
	}
	if res.String() == "" {
		t.Error("empty result description")
	}
}

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{}.withDefaults()
	if s.NumDevices <= 0 || s.Window != EightMonths || s.NumBS < 200 {
		t.Errorf("defaults: %+v", s)
	}
	if s.Trigger.Name() != "fixed" {
		t.Errorf("default trigger %q", s.Trigger.Name())
	}
	if s.Calibration == nil || s.MaxEventsPerDevice != 200000 {
		t.Error("calibration defaults missing")
	}
}

func TestPatchedScenario(t *testing.T) {
	s := baseScenario(10).Patched(android.PaperTIMPTrigger)
	if s.Policy != PolicyStability || !s.DualConnectivity || s.Trigger.Name() != "timp" {
		t.Errorf("Patched() = %+v", s)
	}
	if PolicyVanilla.String() != "vanilla" || PolicyStability.String() != "stability-compatible" ||
		PolicyNever5G.String() != "never-5g" || PolicyMode(9).String() != "?" {
		t.Error("bad policy mode strings")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	perDevice := func(res *Result) map[uint64]int {
		m := map[uint64]int{}
		res.Dataset.Each(func(e *failure.Event) { m[e.DeviceID]++ })
		return m
	}
	s1 := baseScenario(400)
	s1.Workers = 1
	s2 := baseScenario(400)
	s2.Workers = 7
	a := perDevice(runFleet(t, s1))
	b := perDevice(runFleet(t, s2))
	if len(a) != len(b) {
		t.Fatalf("device sets differ: %d vs %d", len(a), len(b))
	}
	for id, n := range a {
		if b[id] != n {
			t.Fatalf("device %d: %d vs %d events across worker counts", id, n, b[id])
		}
	}
}

func TestPrevalenceAndFrequencyNearCatalogue(t *testing.T) {
	res := runFleet(t, baseScenario(4000))
	devs := map[uint64]bool{}
	res.Dataset.Each(func(e *failure.Event) { devs[e.DeviceID] = true })
	prev := float64(len(devs)) / float64(res.Population.Total)
	want := device.WeightedPrevalence()
	// The simulator deliberately under-delivers slightly (transition-only
	// 5G devices may not fail); accept a generous band around 23%.
	if prev < want-0.06 || prev > want+0.04 {
		t.Errorf("prevalence = %.3f, want near %.3f", prev, want)
	}
	freq := float64(res.Dataset.Len()) / float64(res.Population.Total)
	if freq < 20 || freq > 70 {
		t.Errorf("frequency = %.1f, want in the tens (paper: 33)", freq)
	}
}

func TestKindMixNearPaper(t *testing.T) {
	res := runFleet(t, baseScenario(2500))
	counts := map[failure.Kind]int{}
	res.Dataset.Each(func(e *failure.Event) { counts[e.Kind]++ })
	n := float64(res.Dataset.Len())
	setup := float64(counts[failure.DataSetupError]) / n
	stall := float64(counts[failure.DataStall]) / n
	oos := float64(counts[failure.OutOfService]) / n
	legacy := float64(counts[failure.SMSSendFail]+counts[failure.VoiceFailure]) / n
	if math.Abs(setup-0.48) > 0.10 {
		t.Errorf("setup share = %.3f, want ≈0.48", setup)
	}
	if math.Abs(stall-0.42) > 0.10 {
		t.Errorf("stall share = %.3f, want ≈0.42", stall)
	}
	if oos < 0.03 || oos > 0.13 {
		t.Errorf("OOS share = %.3f, want ≈0.09", oos)
	}
	if legacy > 0.02 {
		t.Errorf("legacy share = %.3f, want <1%%", legacy)
	}
}

func TestISPOrdering(t *testing.T) {
	res := runFleet(t, baseScenario(4000))
	withFail := map[simnet.ISPID]map[uint64]bool{}
	for i := simnet.ISPID(0); i < simnet.NumISPs; i++ {
		withFail[i] = map[uint64]bool{}
	}
	res.Dataset.Each(func(e *failure.Event) { withFail[e.ISP][e.DeviceID] = true })
	prev := func(isp simnet.ISPID) float64 {
		return float64(len(withFail[isp])) / float64(res.Population.ByISP[isp])
	}
	a, b, c := prev(simnet.ISPA), prev(simnet.ISPB), prev(simnet.ISPC)
	// Figure 12: B (27.1%) > A (20.1%) > C (14.7%).
	if !(b > a && a > c) {
		t.Errorf("ISP prevalence ordering B>A>C violated: B=%.3f A=%.3f C=%.3f", b, a, c)
	}
}

func TestFiveGAndAndroidVersionOrdering(t *testing.T) {
	res := runFleet(t, baseScenario(4000))
	type agg struct {
		devs   map[uint64]bool
		events int
	}
	groups := map[string]*agg{
		"5g": {devs: map[uint64]bool{}}, "no5g10": {devs: map[uint64]bool{}}, "a9": {devs: map[uint64]bool{}},
	}
	res.Dataset.Each(func(e *failure.Event) {
		var g *agg
		switch {
		case e.FiveGCapable:
			g = groups["5g"]
		case e.AndroidVersion == 10:
			g = groups["no5g10"]
		default:
			g = groups["a9"]
		}
		g.devs[e.DeviceID] = true
		g.events++
	})
	pop := map[string]int{
		"5g":     res.Population.FiveG,
		"no5g10": res.Population.Android10No5G,
		"a9":     res.Population.Android9,
	}
	prev := func(k string) float64 { return float64(len(groups[k].devs)) / float64(pop[k]) }
	freq := func(k string) float64 { return float64(groups[k].events) / float64(pop[k]) }
	// Figures 6/7: 5G phones fail more than non-5G.
	if prev("5g") <= prev("no5g10") {
		t.Errorf("5G prevalence %.3f should exceed non-5G Android 10 %.3f", prev("5g"), prev("no5g10"))
	}
	if freq("5g") <= freq("no5g10") {
		t.Errorf("5G frequency %.1f should exceed non-5G Android 10 %.1f", freq("5g"), freq("no5g10"))
	}
	// Figures 8/9: Android 10 fails more than Android 9 (fair comparison
	// uses non-5G Android 10, footnote 4).
	if prev("no5g10") <= prev("a9") {
		t.Errorf("Android 10 prevalence %.3f should exceed Android 9 %.3f", prev("no5g10"), prev("a9"))
	}
}

func TestStallEventsCarryRecoveryMetadata(t *testing.T) {
	res := runFleet(t, baseScenario(1200))
	var stalls, withAutoFix, opFixed, userReset, auto int
	res.Dataset.Each(func(e *failure.Event) {
		if e.Kind != failure.DataStall {
			return
		}
		stalls++
		if e.AutoFixTime > 0 {
			withAutoFix++
		}
		switch e.ResolvedBy {
		case android.ResolvedOp1, android.ResolvedOp2, android.ResolvedOp3:
			opFixed++
		case android.ResolvedUserReset:
			userReset++
		case android.ResolvedAuto:
			auto++
		}
		if e.Duration < 0 || e.Duration > 100000*time.Second {
			t.Fatalf("implausible stall duration %v", e.Duration)
		}
	})
	if stalls == 0 {
		t.Fatal("no stalls recorded")
	}
	if withAutoFix != stalls {
		t.Errorf("stalls without AutoFixTime: %d of %d", stalls-withAutoFix, stalls)
	}
	// All three resolution paths must occur in a fleet this size.
	if auto == 0 || opFixed == 0 || userReset == 0 {
		t.Errorf("resolution mix auto=%d op=%d user=%d; all should occur", auto, opFixed, userReset)
	}
	// Most stalls self-heal (Figure 10: 60% within 10 s, before the
	// one-minute probation expires).
	if auto < opFixed {
		t.Errorf("auto=%d should dominate op-fixed=%d under the 60 s trigger", auto, opFixed)
	}
}

func TestNoFalsePositiveCausesInDataset(t *testing.T) {
	res := runFleet(t, baseScenario(1500))
	res.Dataset.Each(func(e *failure.Event) {
		if e.Cause.IsFalsePositive() {
			t.Fatalf("false-positive cause %v leaked into dataset", e.Cause)
		}
	})
	st := res.Monitor
	if st.FilteredSetup == 0 || st.FilteredStalls == 0 {
		t.Errorf("filtering never exercised: %+v", st)
	}
	if st.ByFPClass[failure.FPBSOverload] == 0 {
		t.Error("no BS-overload false positives filtered")
	}
	if st.ByFPClass[failure.FPSystemSide] == 0 && st.ByFPClass[failure.FPDNSOnly] == 0 {
		t.Error("no probe-classified stall false positives filtered")
	}
}

func TestTransitionMatrixShape(t *testing.T) {
	res := runFleet(t, baseScenario(3000))
	var expTotal, failTotal int64
	for a := 0; a < numRATIdx; a++ {
		for b := 0; b < telephony.NumSignalLevels; b++ {
			for c := 0; c < numRATIdx; c++ {
				for d := 0; d < telephony.NumSignalLevels; d++ {
					expTotal += res.Transitions.Exposure[a][b][c][d]
					failTotal += res.Transitions.Failures[a][b][c][d]
				}
			}
		}
	}
	if expTotal == 0 || failTotal == 0 {
		t.Fatalf("transition matrix empty: exposures=%d failures=%d", expTotal, failTotal)
	}
	// Failure rate into level-0 destinations must far exceed the rate
	// into level-3+ destinations (Figure 17's dark cells).
	rate := func(toLvl telephony.SignalLevel) float64 {
		var e, f int64
		for a := 0; a < numRATIdx; a++ {
			for b := 0; b < telephony.NumSignalLevels; b++ {
				for c := 0; c < numRATIdx; c++ {
					e += res.Transitions.Exposure[a][b][c][toLvl]
					f += res.Transitions.Failures[a][b][c][toLvl]
				}
			}
		}
		if e == 0 {
			return 0
		}
		return float64(f) / float64(e)
	}
	if rate(telephony.Level0) <= 2*rate(telephony.Level3) {
		t.Errorf("level-0 destination rate %.2f should dwarf level-3 rate %.2f",
			rate(telephony.Level0), rate(telephony.Level3))
	}
}

func TestDwellStatsPopulated(t *testing.T) {
	res := runFleet(t, baseScenario(800))
	var total float64
	for a := 0; a < numRATIdx; a++ {
		for b := 0; b < telephony.NumSignalLevels; b++ {
			total += res.Dwell.Seconds[a][b]
		}
	}
	if total <= 0 {
		t.Fatal("no dwell time accounted")
	}
	if res.Dwell.DevicesOnRAT[telephony.RAT4G] == 0 {
		t.Error("no devices on 4G")
	}
	if res.Dwell.DevicesOnBSRAT[telephony.RAT4G] < res.Dwell.DevicesOnRAT[telephony.RAT4G] {
		t.Error("BS-RAT exposure should be at least camped-RAT exposure")
	}
	// 3G dwell share is small (not preferred when 4G available).
	var dwell3g, dwell4g float64
	for b := 0; b < telephony.NumSignalLevels; b++ {
		dwell3g += res.Dwell.Seconds[telephony.RAT3G][b]
		dwell4g += res.Dwell.Seconds[telephony.RAT4G][b]
	}
	if dwell3g >= dwell4g {
		t.Errorf("3G dwell %v >= 4G dwell %v", dwell3g, dwell4g)
	}
}

func TestEnhancementReducesFiveGFailuresAndStallDurations(t *testing.T) {
	base := Scenario{Seed: 7, NumDevices: 2500, Workers: 4}
	van := runFleet(t, base)
	pat := runFleet(t, base.Patched(android.PaperTIMPTrigger))

	fiveG := func(res *Result) int {
		n := 0
		res.Dataset.Each(func(e *failure.Event) {
			if e.FiveGCapable {
				n++
			}
		})
		return n
	}
	meanStall := func(res *Result) float64 {
		var d time.Duration
		n := 0
		res.Dataset.Each(func(e *failure.Event) {
			if e.Kind == failure.DataStall {
				d += e.Duration
				n++
			}
		})
		return d.Seconds() / float64(n)
	}
	vf, pf := fiveG(van), fiveG(pat)
	drop := 1 - float64(pf)/float64(vf)
	if drop < 0.2 || drop > 0.65 {
		t.Errorf("5G failure reduction = %.1f%%, want ≈40%% (paper 40.3%%)", drop*100)
	}
	vs, ps := meanStall(van), meanStall(pat)
	stallDrop := 1 - ps/vs
	if stallDrop < 0.2 || stallDrop > 0.65 {
		t.Errorf("stall duration reduction = %.1f%%, want ≈38%%", stallDrop*100)
	}
}

func TestUploadPathDeliversSameEvents(t *testing.T) {
	direct := runFleet(t, baseScenario(300))

	ds := trace.NewDataset()
	col, err := trace.NewCollector("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	s := baseScenario(300)
	s.UploadAddr = col.Addr()
	uploaded := runFleet(t, s)
	_ = uploaded

	if ds.Len() != direct.Dataset.Len() {
		t.Errorf("uploaded %d events, direct run produced %d", ds.Len(), direct.Dataset.Len())
	}
}

func TestUploadPathBadAddressErrors(t *testing.T) {
	s := baseScenario(50)
	s.UploadAddr = "127.0.0.1:1"
	if _, err := Run(s); err == nil {
		t.Error("upload to dead collector should error")
	}
}

func TestOverheadWithinPaperBudget(t *testing.T) {
	res := runFleet(t, baseScenario(1000))
	o := res.Overhead
	if o.Devices != 1000 {
		t.Fatalf("overhead devices = %d", o.Devices)
	}
	// Paper: <2% CPU for typical devices, <8% worst case.
	if o.MeanCPUUtilization >= 0.02 {
		t.Errorf("mean CPU utilization %.4f, budget <2%%", o.MeanCPUUtilization)
	}
	if o.MaxCPUUtilization >= 0.08 {
		t.Errorf("max CPU utilization %.4f, budget <8%%", o.MaxCPUUtilization)
	}
	// <20 MB storage worst case.
	if o.MaxStorageBytes >= 20<<20 {
		t.Errorf("max storage %d, budget <20 MB", o.MaxStorageBytes)
	}
	// ~20 MB/month network worst case → 160 MB over 8 months.
	if o.MaxNetworkBytes >= 160<<20 {
		t.Errorf("max network %d over the window", o.MaxNetworkBytes)
	}
}

func TestCalibrationSamplers(t *testing.T) {
	cal := DefaultCalibration()
	r := rng.New(12345)
	// Stall auto-fix: ~60% within 10 s (Figure 10), capped at the paper's max.
	n, under10 := 20000, 0
	for i := 0; i < n; i++ {
		d := cal.SampleStallAutoFix(r, 1)
		if d > 92000*time.Second {
			t.Fatalf("auto-fix %v exceeds paper maximum", d)
		}
		if d <= 10*time.Second {
			under10++
		}
	}
	frac := float64(under10) / float64(n)
	if math.Abs(frac-0.60) > 0.06 {
		t.Errorf("P(auto-fix <= 10s) = %.3f, want ≈0.60", frac)
	}
	// Neglect factor stretches durations.
	long := cal.SampleStallAutoFix(r, 12)
	_ = long
	// User reset around 30 s when it happens.
	resets, sum := 0, 0.0
	for i := 0; i < 20000; i++ {
		if d := cal.SampleUserReset(r); d > 0 {
			resets++
			sum += d.Seconds()
		}
	}
	rate := float64(resets) / 20000
	if math.Abs(rate-cal.UserResetProb) > 0.02 {
		t.Errorf("user reset rate %.3f, want %.2f", rate, cal.UserResetProb)
	}
	if mean := sum / float64(resets); math.Abs(mean-30) > 3 {
		t.Errorf("user reset mean %.1f s, want ≈30", mean)
	}
	// Setup attempts within budget.
	for i := 0; i < 1000; i++ {
		a := cal.SampleSetupAttempts(r, 6)
		if a < 1 || a > 6 {
			t.Fatalf("attempts = %d", a)
		}
	}
	// FP stall conditions are always false-positive classes.
	for i := 0; i < 1000; i++ {
		c := cal.SampleFPStallCondition(r)
		if !c.SystemSide() && c.String() != "dns-unavailable" {
			t.Fatalf("FP condition %v is not a false-positive class", c)
		}
	}
}

func TestTransitionMatrixAddAndFailureRate(t *testing.T) {
	var m, other TransitionMatrix
	other.Exposure[3][2][4][0] = 10
	other.Failures[3][2][4][0] = 4
	m.Add(&other)
	m.Add(&other)
	rate, ok := m.FailureRate(telephony.RAT4G, telephony.Level2, telephony.RAT5G, telephony.Level0)
	if !ok || math.Abs(rate-0.4) > 1e-12 {
		t.Errorf("rate = %v, %v", rate, ok)
	}
	if _, ok := m.FailureRate(telephony.RAT2G, telephony.Level5, telephony.RAT3G, telephony.Level5); ok {
		t.Error("unobserved transition should report !ok")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	res := runFleet(t, baseScenario(200))
	dir := t.TempDir()
	path := dir + "/run.snap.gz"
	if err := SaveResult(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.Len() != res.Dataset.Len() {
		t.Errorf("events %d vs %d", got.Dataset.Len(), res.Dataset.Len())
	}
	if got.Population != res.Population {
		t.Error("population mismatch")
	}
	if len(got.Network.Stations) != len(res.Network.Stations) {
		t.Error("station census mismatch")
	}
	if got.Transitions != res.Transitions {
		t.Error("transition matrix mismatch")
	}
	if got.Monitor.Recorded != res.Monitor.Recorded {
		t.Error("monitor stats mismatch")
	}
	if got.Overhead != res.Overhead {
		t.Error("overhead mismatch")
	}
	// Restored network supports attachment (pools rebuilt).
	r := rng.New(1)
	if _, err := got.Network.Attach(r, simnet.ISPA, 0, telephony.RAT4G); err != nil {
		t.Errorf("restored network cannot attach: %v", err)
	}
}

func TestLoadResultMissing(t *testing.T) {
	if _, err := LoadResult(t.TempDir() + "/missing"); err == nil {
		t.Error("missing snapshot should error")
	}
}

func TestSweep(t *testing.T) {
	points := []SweepPoint{
		{Name: "vanilla", Scenario: Scenario{Seed: 2, NumDevices: 300, Workers: 2}},
		{Name: "stability", Scenario: Scenario{Seed: 2, NumDevices: 300, Workers: 2, Policy: PolicyStability, DualConnectivity: true}},
	}
	rows, err := Sweep(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "vanilla" || rows[1].Name != "stability" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Events == 0 || r.Prevalence <= 0 || r.FilteredFalsePositives == 0 {
			t.Errorf("degenerate metrics: %+v", r)
		}
	}
	// Same seed: the stability variant should not produce more 5G failures.
	if rows[1].FiveGFrequency > rows[0].FiveGFrequency {
		t.Errorf("stability policy increased 5G frequency: %+v", rows)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	_, err := Sweep([]SweepPoint{{Name: "bad", Scenario: Scenario{NumDevices: 10, UploadAddr: "127.0.0.1:1"}}})
	if err == nil {
		t.Error("sweep should surface run errors")
	}
}

func TestDisableFPFilterIncreasesEvents(t *testing.T) {
	clean := runFleet(t, baseScenario(400))
	s := baseScenario(400)
	s.DisableFPFilter = true
	dirty := runFleet(t, s)
	if dirty.Dataset.Len() <= clean.Dataset.Len() {
		t.Errorf("unfiltered run should record more events: %d vs %d",
			dirty.Dataset.Len(), clean.Dataset.Len())
	}
	// The polluted dataset contains false-positive causes.
	polluted := false
	dirty.Dataset.Each(func(e *failure.Event) {
		if e.Cause.IsFalsePositive() {
			polluted = true
		}
	})
	if !polluted {
		t.Error("expected false-positive causes in the unfiltered dataset")
	}
}

// Property: TransitionMatrix.Add is commutative and element-wise additive.
func TestTransitionMatrixAddProperty(t *testing.T) {
	fill := func(seed int64) *TransitionMatrix {
		r := rng.New(seed)
		var m TransitionMatrix
		for i := 0; i < 40; i++ {
			a, b := r.Intn(numRATIdx), r.Intn(int(telephony.NumSignalLevels))
			c, d := r.Intn(numRATIdx), r.Intn(int(telephony.NumSignalLevels))
			m.Exposure[a][b][c][d] += int64(r.Intn(100))
			m.Failures[a][b][c][d] += int64(r.Intn(50))
		}
		return &m
	}
	for seed := int64(0); seed < 20; seed++ {
		x, y := fill(seed), fill(seed+1000)
		var xy, yx TransitionMatrix
		xy.Add(x)
		xy.Add(y)
		yx.Add(y)
		yx.Add(x)
		if xy != yx {
			t.Fatalf("Add not commutative for seed %d", seed)
		}
	}
}

// Property: Population.Add and DwellStats.Add accumulate exactly.
func TestAggregateAddProperty(t *testing.T) {
	r := rng.New(5)
	var total Population
	var parts []Population
	for i := 0; i < 10; i++ {
		var p Population
		p.Total = r.Intn(100)
		p.FiveG = r.Intn(10)
		p.ByModel[1+r.Intn(34)] = r.Intn(50)
		p.ByISP[r.Intn(3)] = r.Intn(50)
		parts = append(parts, p)
		total.Add(&p)
	}
	sum := 0
	for _, p := range parts {
		sum += p.Total
	}
	if total.Total != sum {
		t.Errorf("population total %d, want %d", total.Total, sum)
	}

	var d1, d2, both DwellStats
	d1.Seconds[3][2] = 10.5
	d1.DevicesOnRAT[3] = 4
	d2.Seconds[3][2] = 2.5
	d2.DevicesExposed[3][2] = 7
	both.Add(&d1)
	both.Add(&d2)
	if both.Seconds[3][2] != 13 || both.DevicesOnRAT[3] != 4 || both.DevicesExposed[3][2] != 7 {
		t.Errorf("dwell add wrong: %+v", both)
	}
}

func TestOutageInjection(t *testing.T) {
	base := baseScenario(600)
	quiet := runFleet(t, base)

	s := baseScenario(600)
	s.Outages = []Outage{{
		Region:            geo.Urban,
		Start:             60 * 24 * time.Hour,
		Window:            7 * 24 * time.Hour,
		EpisodesPerDevice: 6,
	}}
	stormy := runFleet(t, s)

	if stormy.Dataset.Len() <= quiet.Dataset.Len() {
		t.Fatalf("outage added no events: %d vs %d", stormy.Dataset.Len(), quiet.Dataset.Len())
	}
	// The injected events cluster inside the outage window.
	inWindow := func(res *Result) int {
		n := 0
		res.Dataset.Each(func(e *failure.Event) {
			if e.Kind == failure.DataStall && e.Start >= 60*24*time.Hour && e.Start < 67*24*time.Hour {
				n++
			}
		})
		return n
	}
	if q, st := inWindow(quiet), inWindow(stormy); st < 2*q {
		t.Errorf("outage window stalls %d vs baseline %d; want a clear spike", st, q)
	}
}

func TestParseScenario(t *testing.T) {
	cfg := `{
		"seed": 9, "devices": 500, "months": 2, "workers": 3,
		"policy": "stability", "trigger": "timp", "dual_connectivity": true,
		"outages": [{"region": "urban", "start_days": 10, "window_days": 3, "episodes_per_device": 4}]
	}`
	s, err := ParseScenario(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 9 || s.NumDevices != 500 || s.Workers != 3 {
		t.Errorf("basics: %+v", s)
	}
	if s.Window != 2*30*24*time.Hour {
		t.Errorf("window = %v", s.Window)
	}
	if s.Policy != PolicyStability || !s.DualConnectivity || s.Trigger.Name() != "timp" {
		t.Errorf("policy/trigger: %+v", s)
	}
	if len(s.Outages) != 1 || s.Outages[0].Region != geo.Urban || s.Outages[0].Window != 3*24*time.Hour {
		t.Errorf("outages: %+v", s.Outages)
	}
}

func TestParseScenarioCustomTrigger(t *testing.T) {
	s, err := ParseScenario(strings.NewReader(`{"seed":1,"devices":10,"trigger":"12,5.5,20"}`))
	if err != nil {
		t.Fatal(err)
	}
	pt, ok := s.Trigger.(android.ProfileTrigger)
	if !ok {
		t.Fatalf("trigger type %T", s.Trigger)
	}
	if pt[0] != 12*time.Second || pt[1] != 5500*time.Millisecond || pt[2] != 20*time.Second {
		t.Errorf("probations = %v", pt)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []string{
		`{"policy":"bogus"}`,
		`{"trigger":"abc"}`,
		`{"trigger":"1,2,-3"}`,
		`{"outages":[{"region":"atlantis","window_days":1,"episodes_per_device":1}]}`,
		`{"outages":[{"region":"urban","window_days":0,"episodes_per_device":1}]}`,
		`{"unknown_field":1}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ParseScenario(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestLoadScenarioFile(t *testing.T) {
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, []byte(`{"seed":4,"devices":50}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 4 || s.NumDevices != 50 {
		t.Errorf("loaded %+v", s)
	}
	if _, err := LoadScenario(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}
