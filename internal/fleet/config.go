package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/android"
	"repro/internal/faultinject"
	"repro/internal/geo"
)

// ScenarioConfig is the JSON shape of a scenario file, using
// human-friendly units (months, seconds) and names (policy and trigger
// strings) instead of Go types.
type ScenarioConfig struct {
	Seed       int64   `json:"seed"`
	Devices    int     `json:"devices"`
	Months     float64 `json:"months,omitempty"`
	BS         int     `json:"base_stations,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Policy     string  `json:"policy,omitempty"`  // vanilla | stability | never5g
	Trigger    string  `json:"trigger,omitempty"` // fixed | timp | "a,b,c" seconds
	DualConn   bool    `json:"dual_connectivity,omitempty"`
	DisableFP  bool    `json:"disable_fp_filter,omitempty"`
	UploadAddr string  `json:"upload_addr,omitempty"`
	// UploadBuffer/UploadSpillDir tune the uploader's bounded backlog; see
	// the matching Scenario fields.
	UploadBuffer   int    `json:"upload_buffer,omitempty"`
	UploadSpillDir string `json:"upload_spill_dir,omitempty"`
	Outages        []struct {
		Region            string  `json:"region"`
		StartDays         float64 `json:"start_days"`
		WindowDays        float64 `json:"window_days"`
		EpisodesPerDevice float64 `json:"episodes_per_device"`
	} `json:"outages,omitempty"`
	// Faults embeds a fault campaign (same shape as a standalone campaign
	// file; see internal/faultinject).
	Faults *faultinject.CampaignConfig `json:"faults,omitempty"`
}

// LoadScenario reads a JSON scenario file.
func LoadScenario(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	return ParseScenario(f)
}

// ParseScenario decodes a JSON scenario.
func ParseScenario(r io.Reader) (Scenario, error) {
	var cfg ScenarioConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Scenario{}, fmt.Errorf("fleet: parse scenario: %w", err)
	}
	return cfg.Scenario()
}

// Scenario converts the config into a runnable scenario.
func (cfg ScenarioConfig) Scenario() (Scenario, error) {
	s := Scenario{
		Seed:              cfg.Seed,
		NumDevices:        cfg.Devices,
		NumBS:             cfg.BS,
		Workers:           cfg.Workers,
		DualConnectivity:  cfg.DualConn,
		DisableFPFilter:   cfg.DisableFP,
		UploadAddr:        cfg.UploadAddr,
		UploadBufferLimit: cfg.UploadBuffer,
		UploadSpillDir:    cfg.UploadSpillDir,
	}
	if cfg.Months > 0 {
		s.Window = time.Duration(cfg.Months * 30 * 24 * float64(time.Hour))
	}
	switch cfg.Policy {
	case "", "vanilla":
		s.Policy = PolicyVanilla
	case "stability":
		s.Policy = PolicyStability
	case "never5g":
		s.Policy = PolicyNever5G
	default:
		return Scenario{}, fmt.Errorf("fleet: unknown policy %q", cfg.Policy)
	}
	switch cfg.Trigger {
	case "", "fixed":
		s.Trigger = android.DefaultFixedTrigger
	case "timp":
		s.Trigger = android.PaperTIMPTrigger
	default:
		var a, b, c float64
		if _, err := fmt.Sscanf(cfg.Trigger, "%f,%f,%f", &a, &b, &c); err != nil {
			return Scenario{}, fmt.Errorf("fleet: trigger %q is not fixed|timp|\"a,b,c\" seconds", cfg.Trigger)
		}
		if a <= 0 || b <= 0 || c <= 0 {
			return Scenario{}, fmt.Errorf("fleet: trigger probations must be positive")
		}
		s.Trigger = android.ProfileTrigger{
			time.Duration(a * float64(time.Second)),
			time.Duration(b * float64(time.Second)),
			time.Duration(c * float64(time.Second)),
		}
	}
	for _, o := range cfg.Outages {
		region, err := parseRegion(o.Region)
		if err != nil {
			return Scenario{}, err
		}
		if o.WindowDays <= 0 || o.EpisodesPerDevice <= 0 {
			return Scenario{}, fmt.Errorf("fleet: outage needs positive window_days and episodes_per_device")
		}
		s.Outages = append(s.Outages, Outage{
			Region:            region,
			Start:             time.Duration(o.StartDays * 24 * float64(time.Hour)),
			Window:            time.Duration(o.WindowDays * 24 * float64(time.Hour)),
			EpisodesPerDevice: o.EpisodesPerDevice,
		})
	}
	if cfg.Faults != nil {
		campaign, err := cfg.Faults.Campaign()
		if err != nil {
			return Scenario{}, err
		}
		s.Faults = campaign
	}
	return s, nil
}

func parseRegion(name string) (geo.Region, error) {
	for r := geo.Region(0); r < geo.NumRegions; r++ {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown region %q", name)
}
