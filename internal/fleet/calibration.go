// Package fleet drives the large-scale measurement study as a discrete-
// event simulation: a population of Android-MOD devices (Table 1 mix)
// living in the simulated radio environment for the eight-month window,
// each running the reimplemented connection state machine, stall detector,
// probing component, recovery engine and RAT selection policy. The same
// runner executes the vanilla configuration (the paper's measurement
// study, §3) and the patched configuration (the §4 enhancements), so the
// A/B comparison of Figures 19-21 is a pair of runs.
package fleet

import (
	"math"
	"time"

	"repro/internal/failure"
	"repro/internal/netprobe"
	"repro/internal/rng"
)

// Calibration gathers every generator parameter derived from the paper's
// published distributions. The analysis pipeline never reads these — it
// recomputes everything from simulated events, which validates the whole
// pipeline round trip.
type Calibration struct {
	// KindWeights is the failure-kind mix: an average phone sees 16
	// Data_Setup_Error, 14 Data_Stall and 3 Out_of_Service events (§3.1),
	// plus a <1% tail of legacy SMS/voice failures.
	KindWeights map[failure.Kind]float64

	// TransitionShare5G is the fraction of a 5G-capable Android 10
	// device's failures induced by RAT transitions under the vanilla
	// 5G-first policy; the patched policy avoids most of them, producing
	// the ≈40% frequency drop of Figure 20.
	TransitionShare5G float64
	// TransitionShareOther is the same share for non-5G devices
	// (2G/3G/4G transitions, Figure 17a-d).
	TransitionShareOther float64
	// TransitionOnly5G is the probability that a *lightly failing* 5G
	// device's failures are entirely transition-induced (weak-5G
	// handovers). Such devices become failure-free under the patched
	// policy, which is how the enhancement reduces prevalence (Figure
	// 19's −10%), not only frequency.
	TransitionOnly5G float64
	// TransitionOnlyMaxE caps the expected-failure intensity of devices
	// eligible for TransitionOnly5G.
	TransitionOnlyMaxE float64

	// StallShortFrac, StallShortMedian, StallShortSigma parameterize the
	// fast-self-heal component of the Data_Stall natural-recovery mixture
	// (Figure 10: ~60% fixed within 10 s).
	StallShortFrac   float64
	StallShortMedian float64 // seconds
	StallShortSigma  float64
	// StallLongMedian, StallLongSigma parameterize the heavy tail
	// (maximum observed duration 91,770 s, §3.1).
	StallLongMedian float64 // seconds
	StallLongSigma  float64

	// UserResetProb is the chance an attentive user manually resets the
	// connection, around 30 s into a stall (§3.2's sampling survey).
	UserResetProb  float64
	UserResetMean  float64 // seconds
	UserResetSigma float64 // seconds

	// StallFPRates give the probability that a suspicious stall is each
	// probe-detectable false-positive class.
	StallFPFirewall float64
	StallFPProxy    float64
	StallFPDriver   float64
	StallFPDNS      float64

	// FPExtraRate is the rate of *extra* suspicious episodes, relative to
	// a device's true-failure intensity, that are false positives and
	// must be filtered by the monitor (BS-overload rejections, voice
	// preemptions, balance suspensions, manual disconnects, system-side
	// and DNS-side stall causes). They exercise the filtering path
	// without contributing recorded failures.
	FPExtraRate float64
	// FPSetupShare is the fraction of those false positives that present
	// as Data_Setup_Error episodes (the rest present as stalls).
	FPSetupShare float64

	// SetupRetrySuccess is the per-retry probability that the next setup
	// attempt succeeds within an episode.
	SetupRetrySuccess float64

	// OOSMedian/OOSSigma shape Out_of_Service durations (seconds).
	OOSMedian float64
	OOSSigma  float64

	// SetupNoServiceGap is the mean extra outage around a setup-error
	// episode beyond the retry machinery itself (seconds).
	SetupNoServiceGap float64

	// OpSuccess/OpOverhead drive the simulated recovery operations:
	// §3.2 reports the first-stage cleanup fixes 75% of cases.
	OpSuccess  [3]float64
	OpOverhead [3]time.Duration

	// DwellSamples is the number of attachment samples per device used
	// for exposure/dwell accounting and the transition chain.
	DwellSamples int
	// StayProb is the probability that, on a mobility step, the current
	// serving cell is still reachable and remains a camping choice.
	StayProb float64

	// TransitionWindow is the base vulnerability window of a RAT
	// transition; 4G/5G dual connectivity divides it (§4.2).
	TransitionWindow time.Duration

	// HazardCandidates is the importance-sampling width when choosing
	// the attachment context of a failure: the failure lands on one of K
	// candidate attachments proportionally to hazard, concentrating
	// failures in risky contexts exactly as reality does.
	HazardCandidates int
}

// DefaultCalibration returns the paper-derived parameter set.
func DefaultCalibration() Calibration {
	return Calibration{
		KindWeights: map[failure.Kind]float64{
			failure.DataSetupError: 0.481,
			failure.DataStall:      0.421,
			failure.OutOfService:   0.090,
			failure.SMSSendFail:    0.005,
			failure.VoiceFailure:   0.003,
		},
		TransitionShare5G:    0.44,
		TransitionOnly5G:     0.55,
		TransitionOnlyMaxE:   30,
		TransitionShareOther: 0.12,

		StallShortFrac:   0.85,
		StallShortMedian: 5,
		StallShortSigma:  1.2,
		StallLongMedian:  600,
		StallLongSigma:   1.5,

		UserResetProb:  0.25,
		UserResetMean:  30,
		UserResetSigma: 8,

		StallFPFirewall: 0.02,
		StallFPProxy:    0.015,
		StallFPDriver:   0.015,
		StallFPDNS:      0.02,

		FPExtraRate:       0.14,
		FPSetupShare:      0.70,
		SetupRetrySuccess: 0.55,

		OOSMedian: 15,
		OOSSigma:  1.1,

		SetupNoServiceGap: 2,

		OpSuccess:  [3]float64{0.75, 0.85, 0.95},
		OpOverhead: [3]time.Duration{time.Second, 3 * time.Second, 8 * time.Second},

		DwellSamples:     40,
		StayProb:         0.35,
		TransitionWindow: 8 * time.Second,
		HazardCandidates: 3,
	}
}

// SampleStallAutoFix draws a natural self-recovery time for a Data_Stall
// from the Figure 10 mixture, stretched by the regional neglect factor
// (remote BSes yield the multi-hour outages of §3.1).
func (c Calibration) SampleStallAutoFix(r *rng.Source, neglect float64) time.Duration {
	var secs float64
	if r.Bool(c.StallShortFrac) {
		secs = r.LogNormal(math.Log(c.StallShortMedian), c.StallShortSigma)
	} else {
		secs = r.LogNormal(math.Log(c.StallLongMedian), c.StallLongSigma)
		secs *= neglect // neglected remote infrastructure extends outages
	}
	if secs < 0.5 {
		secs = 0.5
	}
	const maxStall = 92000 // paper maximum: 91,770 s
	if secs > maxStall {
		secs = maxStall
	}
	return time.Duration(secs * float64(time.Second))
}

// SampleUserReset draws the user's manual-reset time, or 0 if the user
// does not intervene.
func (c Calibration) SampleUserReset(r *rng.Source) time.Duration {
	if !r.Bool(c.UserResetProb) {
		return 0
	}
	secs := r.Normal(c.UserResetMean, c.UserResetSigma)
	if secs < 5 {
		secs = 5
	}
	return time.Duration(secs * float64(time.Second))
}

// SampleFPStallCondition draws the host condition for a false-positive
// stall episode: a system-side fault or DNS-resolution unavailability,
// weighted by the per-class rates.
func (c Calibration) SampleFPStallCondition(r *rng.Source) netprobe.Condition {
	total := c.StallFPFirewall + c.StallFPProxy + c.StallFPDriver + c.StallFPDNS
	if total <= 0 {
		return netprobe.DNSUnavailable
	}
	u := r.Float64() * total
	switch {
	case u < c.StallFPFirewall:
		return netprobe.FirewallMisconfig
	case u < c.StallFPFirewall+c.StallFPProxy:
		return netprobe.ProxyProblem
	case u < c.StallFPFirewall+c.StallFPProxy+c.StallFPDriver:
		return netprobe.ModemDriverFailure
	default:
		return netprobe.DNSUnavailable
	}
}

// SampleOOSDuration draws an Out_of_Service episode duration.
func (c Calibration) SampleOOSDuration(r *rng.Source) time.Duration {
	secs := r.LogNormal(math.Log(c.OOSMedian), c.OOSSigma)
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs * float64(time.Second))
}

// SampleSetupAttempts draws how many attempts a Data_Setup_Error episode
// takes before succeeding (geometric, capped at the retry budget).
func (c Calibration) SampleSetupAttempts(r *rng.Source, maxAttempts int) int {
	n := 1
	for n < maxAttempts && !r.Bool(c.SetupRetrySuccess) {
		n++
	}
	return n
}
