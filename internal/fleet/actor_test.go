package fleet

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// newTestActor builds one actor on a tiny private environment.
func newTestActor(t *testing.T, modelID int, seed int64) (*actor, *simclock.Scheduler, *[]failure.Event) {
	t.Helper()
	s := Scenario{Seed: seed, NumDevices: 1, Workers: 1}.withDefaults()
	network, err := simnet.Generate(simnet.DefaultDeployment(300), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	refMass := estimateClassMasses(network, s)
	clock := simclock.NewScheduler()
	var events []failure.Event
	shard := &shardState{refMass: refMass, sink: func(e failure.Event) { events = append(events, e) }}
	m, ok := device.ByID(modelID)
	if !ok {
		t.Fatalf("model %d", modelID)
	}
	r := rng.SplitIndexed(seed, "device", 0)
	a := newActor(1, m, clock, r, &s, network, shard, nil, newLaneScratch())
	return a, clock, &events
}

func TestActorProducesContextfulEvents(t *testing.T) {
	// Model 28 has high prevalence; try a few seeds until a prone device
	// materializes (the draw is deterministic per seed).
	for seed := int64(0); seed < 30; seed++ {
		a, clock, events := newTestActor(t, 28, seed)
		if !a.intensity.Prone {
			continue
		}
		clock.Run(a.scen.Window + 2*time.Hour)
		if len(*events) == 0 {
			t.Fatalf("prone actor (E=%.1f) produced no events", a.intensity.ExpectedFailures)
		}
		for _, e := range *events {
			if e.DeviceID != 1 || e.ModelID != 28 {
				t.Fatalf("identity not stamped: %+v", e)
			}
			if e.Kind.IsDataFailure() && e.Cell.MCC == 0 {
				t.Fatalf("event without cell context: %+v", e)
			}
			if e.Cause.IsFalsePositive() {
				t.Fatalf("false positive leaked: %v", e.Cause)
			}
		}
		return
	}
	t.Skip("no prone device found in 30 seeds (statistically ~0.002 chance)")
}

func TestActorNonProneStaysQuiet(t *testing.T) {
	// Model 8 has 0.15% prevalence: almost every draw is non-prone.
	for seed := int64(0); seed < 10; seed++ {
		a, clock, events := newTestActor(t, 8, seed)
		if a.intensity.Prone {
			continue
		}
		clock.Run(a.scen.Window + 2*time.Hour)
		if len(*events) != 0 {
			t.Fatalf("non-prone actor recorded %d events", len(*events))
		}
		// Exposure accounting still ran (denominators need every device).
		var dwell float64
		for rat := 0; rat < numRATIdx; rat++ {
			for l := 0; l < int(telephony.NumSignalLevels); l++ {
				dwell += a.shard.dwell.Seconds[rat][l]
			}
		}
		if dwell <= 0 {
			t.Fatal("non-prone device accounted no dwell")
		}
		return
	}
	t.Fatal("every seed produced a prone device for the lowest-prevalence model")
}

func TestActorBusyCollisionRescheduling(t *testing.T) {
	a, clock, events := newTestActor(t, 28, 1)
	att := a.hazardTiltedAttachment()
	if att.BS == nil {
		t.Skip("no attachment available")
	}
	// Fire two stall episodes at the same instant: the second must retry
	// and both must eventually record.
	ep := plannedEpisode{kind: failure.DataStall, att: att, hasAtt: true}
	clock.At(clock.Now()+time.Second, func() {
		a.runEpisode(ep, 0)
		a.runEpisode(ep, 0)
	})
	clock.Run(6 * time.Hour)
	stalls := 0
	for _, e := range *events {
		if e.Kind == failure.DataStall {
			stalls++
		}
	}
	if stalls < 2 {
		t.Errorf("colliding episodes recorded %d stalls, want both", stalls)
	}
}

func TestActorSetupEpisodeRunsStateMachine(t *testing.T) {
	a, clock, events := newTestActor(t, 28, 1)
	att := a.hazardTiltedAttachment()
	if att.BS == nil {
		t.Skip("no attachment")
	}
	clock.At(clock.Now()+time.Second, func() {
		a.runEpisode(plannedEpisode{kind: failure.DataSetupError, att: att, hasAtt: true}, 0)
	})
	clock.Run(10 * time.Minute)
	if len(*events) != 1 {
		t.Fatalf("events = %d", len(*events))
	}
	e := (*events)[0]
	if e.Kind != failure.DataSetupError {
		t.Fatalf("kind = %v", e.Kind)
	}
	if e.OpsExecuted < 1 {
		t.Error("attempt count missing")
	}
	if e.Duration <= 0 {
		t.Error("no outage duration")
	}
	if a.busy {
		t.Error("actor stuck busy after episode")
	}
}

func TestActorKindWeightsRespectOOSProne(t *testing.T) {
	a, _, _ := newTestActor(t, 28, 1)
	a.intensity.OOSProne = false
	a.buildKindPick()
	r := rng.New(5)
	for i := 0; i < 5000; i++ {
		if a.sampleKind() == failure.OutOfService {
			t.Fatal("non-OOS-prone device sampled an OOS episode")
		}
		_ = r
	}
	a.intensity.OOSProne = true
	a.buildKindPick()
	oos := 0
	for i := 0; i < 5000; i++ {
		if a.sampleKind() == failure.OutOfService {
			oos++
		}
	}
	if oos == 0 {
		t.Fatal("OOS-prone device never sampled OOS")
	}
	// Concentrated mass: roughly KindWeights/proneFraction ≈ 0.09/0.22.
	frac := float64(oos) / 5000
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("OOS share for prone device = %.2f", frac)
	}
}

func TestWindowFractionDualConnectivity(t *testing.T) {
	a, _, _ := newTestActor(t, 33, 1) // 5G model
	if got := a.windowFraction(telephony.RAT4G, telephony.RAT5G); got != 1 {
		t.Errorf("without dual connectivity fraction = %v", got)
	}
	a.dual.Enabled = true
	if got := a.windowFraction(telephony.RAT4G, telephony.RAT5G); got != 0.25 {
		t.Errorf("dual 4G→5G fraction = %v, want 0.25", got)
	}
	if got := a.windowFraction(telephony.RAT2G, telephony.RAT4G); got != 1 {
		t.Errorf("dual non-5G fraction = %v, want 1", got)
	}
}

func TestExtractMetricsEmptyResult(t *testing.T) {
	res := runFleet(t, Scenario{Seed: 1, NumDevices: 5, Workers: 1})
	m := ExtractMetrics("tiny", res)
	if m.Name != "tiny" {
		t.Error("name lost")
	}
	// A 5-device fleet may legitimately have zero events; metrics must
	// not NaN/panic either way.
	if m.Prevalence < 0 || m.Prevalence > 1 {
		t.Errorf("prevalence = %v", m.Prevalence)
	}
}
