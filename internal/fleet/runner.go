package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/android"
	"repro/internal/device"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/telephony"
	"repro/internal/trace"
)

// Run executes a fleet scenario and returns the collected dataset and
// aggregates. Devices are sharded across workers, each with its own
// discrete-event clock and RNG stream; runs are deterministic for a given
// seed regardless of worker count.
//
// Each worker simulates its contiguous device range as a sequence of
// independent lanes: one device at a time on one reused scheduler, RNG
// source, and scratch arena. Device streams are keyed by device index, so
// the per-device draw sequences — and hence every aggregate and recorded
// event — are identical to running all devices interleaved on one shared
// queue (the legacyShardQueue arm keeps that architecture as the
// equivalence oracle and benchmark baseline).
func Run(s Scenario) (*Result, error) {
	runStart := time.Now()
	defer func() { mRunSeconds.Observe(time.Since(runStart).Seconds()) }()
	s = s.withDefaults()
	netRng := rng.New(s.Seed)
	network, err := simnet.Generate(simnet.DefaultDeployment(s.NumBS), netRng.Split("deployment"))
	if err != nil {
		return nil, fmt.Errorf("fleet: generate deployment: %w", err)
	}
	models := device.Models()
	modelWeights := make([]float64, len(models))
	for i, m := range models {
		modelWeights[i] = m.UserShare
	}
	modelPick := rng.NewCategorical(modelWeights)

	dataset := trace.NewDataset()
	refMass := estimateClassMasses(network, s)

	// Compile the fault campaign against the generated deployment. The
	// injector is read-only after compilation and shared by every shard;
	// its station selection draws from (seed, rule name) streams, so the
	// same campaign darkens the same stations for any worker count.
	inj, err := faultinject.Compile(s.Faults, network.Stations, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("fleet: compile fault campaign: %w", err)
	}

	workers := s.Workers
	if workers > s.NumDevices {
		workers = s.NumDevices
	}
	if workers < 1 {
		workers = 1
	}
	outs := make([]shardOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := s.NumDevices * w / workers
		hi := s.NumDevices * (w + 1) / workers
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.legacyShardQueue {
				outs[w] = runShardShared(&s, modelPick, refMass, network, inj, w, lo, hi)
			} else {
				outs[w] = runShardLanes(&s, modelPick, refMass, network, inj, w, lo, hi)
			}
		}()
	}
	wg.Wait()

	res := &Result{Scenario: s, Dataset: dataset, Network: network}
	var cpuSum float64
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return nil, o.err
		}
		res.Population.Add(&o.state.pop)
		res.Transitions.Add(&o.state.trans)
		res.Dwell.Add(&o.state.dwell)
		res.Integrity.Add(&o.integrity)
		res.Monitor.Recorded += o.mon.recorded
		res.Monitor.FilteredSetup += o.mon.filteredSetup
		res.Monitor.FilteredStalls += o.mon.filteredStalls
		res.Monitor.ProbeRounds += o.mon.probeRounds
		res.Monitor.StallsMeasured += o.mon.stallsMeasured
		res.Monitor.LegacyFallbacks += o.mon.legacyFallbacks
		for i, v := range o.mon.byFPClass {
			res.Monitor.ByFPClass[i] += v
		}
		res.Overhead.Devices += o.overhead.Devices
		cpuSum += o.overhead.MeanCPUUtilization * float64(o.overhead.Devices)
		if o.overhead.MaxCPUUtilization > res.Overhead.MaxCPUUtilization {
			res.Overhead.MaxCPUUtilization = o.overhead.MaxCPUUtilization
		}
		if o.overhead.MaxMemoryBytes > res.Overhead.MaxMemoryBytes {
			res.Overhead.MaxMemoryBytes = o.overhead.MaxMemoryBytes
		}
		if o.overhead.MaxStorageBytes > res.Overhead.MaxStorageBytes {
			res.Overhead.MaxStorageBytes = o.overhead.MaxStorageBytes
		}
		if o.overhead.MaxNetworkBytes > res.Overhead.MaxNetworkBytes {
			res.Overhead.MaxNetworkBytes = o.overhead.MaxNetworkBytes
		}
		res.Overhead.TotalNetworkBytes += o.overhead.TotalNetworkBytes
		res.RecordedDigest.Add(o.recordedDigest)
		res.RecordedEvents += o.recordedEvents
	}
	if res.Overhead.Devices > 0 {
		res.Overhead.MeanCPUUtilization = cpuSum / float64(res.Overhead.Devices)
	}
	if s.UploadAddr == "" && s.UploadRouter == nil {
		publishMerged(dataset, outs)
	}
	res.Faults = inj.Report()
	return res, nil
}

// shardOut is one worker's harvest.
type shardOut struct {
	state     *shardState
	mon       monitorAgg
	overhead  OverheadSummary
	integrity IntegrityReport
	// events is the worker's buffered event output (direct-append runs
	// only), sorted by the canonical (Start, DeviceID, record index) key;
	// Run merges the workers' streams into the shared dataset.
	events []failure.Event
	// recordedDigest/recordedEvents summarize the events this shard's
	// devices recorded, accumulated before the uploader (and any injected
	// network fault) touches them — the ground truth side of invariant I4.
	recordedDigest trace.Digest
	recordedEvents int64
	err            error
}

type monitorAgg struct {
	recorded, filteredSetup, filteredStalls int
	probeRounds, stallsMeasured             int
	legacyFallbacks                         int
	byFPClass                               [failure.NumFalsePositiveClasses]int
}

// shardIO is the event-delivery half of a worker: events either buffer
// locally (sortCanonical then merged by Run) or stream to a TCP uploader.
type shardIO struct {
	buffer   []failure.Event
	uploader *trace.Uploader
}

// setup wires the worker's sink into state. The sink wrapper bumps the
// fleet-wide event counter; it is a bare atomic add, so the hot path stays
// allocation-free and shard determinism is untouched.
func (sio *shardIO) setup(s *Scenario, state *shardState, inj *faultinject.Injector, lo int, out *shardOut) error {
	if s.UploadAddr != "" || s.UploadRouter != nil {
		dialect, err := trace.ParseDialect(s.UploadDialect)
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		// A router resolves the initial target per device and keeps
		// re-resolving across membership changes; a bare UploadAddr pins
		// one collector for the whole run.
		addr := s.UploadAddr
		if s.UploadRouter != nil {
			addr = s.UploadRouter.Target(uint64(lo))
		}
		sio.uploader = trace.NewUploader(addr, uint64(lo))
		sio.uploader.Dialect = dialect
		if s.UploadRouter != nil {
			sio.uploader.SetRouter(s.UploadRouter)
		}
		// Short, seeded backoff: the collector is local, so retries are
		// cheap; the jitter stream is split per shard so retry timing never
		// couples shards (and cannot perturb the simulation, which runs on
		// its own virtual clock).
		sio.uploader.SetBackoff(2*time.Millisecond, 50*time.Millisecond,
			rng.SplitIndexed(s.Seed, "uploader-backoff", lo))
		if s.UploadBufferLimit > 0 {
			sio.uploader.BufferLimit = s.UploadBufferLimit
		}
		if s.UploadSpillDir != "" {
			if err := sio.uploader.EnableSpill(s.UploadSpillDir); err != nil {
				return fmt.Errorf("fleet: enable upload spill: %w", err)
			}
		}
		if inj.HasNetworkFaults() {
			sio.uploader.SetChaos(inj)
		}
	}
	state.sink = func(e failure.Event) {
		mEvents.Inc()
		if sio.uploader != nil {
			// Digest before upload: this is what the device observed, the
			// reference the collector's dataset must reproduce exactly.
			out.recordedDigest.Add(trace.EventDigest(&e))
			out.recordedEvents++
			sio.uploader.Record(e)
			return
		}
		sio.buffer = append(sio.buffer, e)
	}
	return nil
}

// finish flushes the uploader (with retries) or sorts the local buffer
// into canonical order for Run's cross-worker merge.
func (sio *shardIO) finish(inj *faultinject.Injector, out *shardOut) {
	if sio.uploader == nil {
		sortCanonical(sio.buffer)
		out.events = sio.buffer
		return
	}
	sio.uploader.SetWiFi(true)
	// The end-of-shard flush is the one upload that must not be lost;
	// retry transient collector failures before surfacing the error,
	// counting retries for the dashboard. Under an injected network
	// fault campaign every attempt can fail with high probability, so
	// the budget rises accordingly — at-least-once is only as good as
	// the sender's persistence, and the collector dedups the rest.
	attempts := shardFlushAttempts
	if inj.HasNetworkFaults() {
		attempts = shardFlushAttemptsChaos
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			mUploadRetries.Inc()
			if d := sio.uploader.RetryDelay(); d > 0 {
				time.Sleep(d)
			} else {
				time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
			}
		}
		if err = sio.uploader.Flush(); err == nil {
			break
		}
	}
	if err != nil {
		out.err = fmt.Errorf("fleet: upload shard events: %w", err)
	}
}

// runShardLanes simulates devices [lo, hi) one at a time, reusing a single
// scheduler, RNG source, and scratch arena across the whole range. Steady-
// state allocation is near zero: each device's plan, candidate buffers, and
// timers live in recycled lane storage. shard is the worker index, used
// only as a metrics label.
func runShardLanes(s *Scenario, modelPick *rng.Categorical, refMass map[classKey]classMass, network *simnet.Network, inj *faultinject.Injector, shard, lo, hi int) (out shardOut) {
	shardStart := time.Now()
	mShardsStarted.Inc()
	mShardsActive.Add(1)
	defer func() {
		mShardsActive.Add(-1)
		mShardsDone.Inc()
		mShardSeconds.Observe(time.Since(shardStart).Seconds())
	}()

	clock := simclock.NewScheduler()
	state := &shardState{refMass: refMass}
	out.state = state
	var sio shardIO
	if err := sio.setup(s, state, inj, lo, &out); err != nil {
		out.err = err
		return out
	}
	if sio.uploader != nil {
		defer sio.uploader.Close()
	}

	depth := mQueueDepth.With(strconv.Itoa(shard))
	scr := newLaneScratch()
	r := rng.New(0)
	models := device.Models()
	// Run the window plus slack for in-flight episodes to conclude.
	until := s.Window + 2*time.Hour
	var executed int
	for i := lo; i < hi; i++ {
		r.Reseed(rng.IndexedSeed(s.Seed, "device", i))
		m := models[modelPick.Draw(r)]
		a := newActor(uint64(i+1), m, clock, r, s, network, state, inj, scr)
		// The gauge tracks the lane's plan backlog: with one device per
		// queue it peaks right after planning.
		depth.Set(float64(clock.QueueLen()))
		executed += clock.Run(until)
		harvestActor(a, &out)
		mDevices.Inc()
		clock.Reset()
	}
	mSimEvents.Add(int64(executed))
	depth.Set(0)
	if out.overhead.Devices > 0 {
		out.overhead.MeanCPUUtilization /= float64(out.overhead.Devices)
	}
	sio.finish(inj, &out)
	return out
}

// runShardShared simulates devices [lo, hi) interleaved on one shared event
// queue — the pre-lane architecture. It is retained as the benchmark
// baseline and as the equivalence oracle for the lane runner: both must
// produce byte-identical ordered digests. shard is the worker index, used
// only as a metrics label.
func runShardShared(s *Scenario, modelPick *rng.Categorical, refMass map[classKey]classMass, network *simnet.Network, inj *faultinject.Injector, shard, lo, hi int) (out shardOut) {
	shardStart := time.Now()
	mShardsStarted.Inc()
	mShardsActive.Add(1)
	defer func() {
		mShardsActive.Add(-1)
		mShardsDone.Inc()
		mShardSeconds.Observe(time.Since(shardStart).Seconds())
	}()

	clock := simclock.NewScheduler()
	state := &shardState{refMass: refMass}
	out.state = state
	var sio shardIO
	if err := sio.setup(s, state, inj, lo, &out); err != nil {
		out.err = err
		return out
	}
	if sio.uploader != nil {
		defer sio.uploader.Close()
	}

	// Sample this shard's event-queue depth every simulated hour. The
	// sampler only reads clock state and writes an atomic gauge: it
	// cannot perturb the simulation (no RNG draws, no device state).
	depth := mQueueDepth.With(strconv.Itoa(shard))
	var sampleDepth func()
	sampleDepth = func() {
		depth.Set(float64(clock.QueueLen()))
		clock.After(time.Hour, sampleDepth)
	}
	clock.After(time.Hour, sampleDepth)

	models := device.Models()
	actors := make([]*actor, 0, hi-lo)
	for i := lo; i < hi; i++ {
		r := rng.SplitIndexed(s.Seed, "device", i)
		m := models[modelPick.Draw(r)]
		// Actors are alive concurrently here, so each needs a private arena.
		actors = append(actors, newActor(uint64(i+1), m, clock, r, s, network, state, inj, newLaneScratch()))
	}

	// Run the window plus slack for in-flight episodes to conclude.
	executed := clock.Run(s.Window + 2*time.Hour)
	mSimEvents.Add(int64(executed))
	mDevices.Add(int64(hi - lo))
	depth.Set(0)

	for _, a := range actors {
		harvestActor(a, &out)
	}
	if out.overhead.Devices > 0 {
		out.overhead.MeanCPUUtilization /= float64(out.overhead.Devices)
	}
	sio.finish(inj, &out)
	return out
}

// harvestActor folds one finished device into the worker's aggregates:
// state-machine integrity, monitor statistics, and overhead accounting.
// MeanCPUUtilization accumulates a sum here; callers divide by Devices.
func harvestActor(a *actor, out *shardOut) {
	switch a.dc.State() {
	case android.DcInactive, android.DcActive:
	default:
		out.integrity.Wedged++
	}
	if a.inSetup {
		out.integrity.OpenSetups++
	}
	if a.busy {
		out.integrity.OpenEpisodes++
	}
	o := a.mon.Overhead()
	st := a.mon.Stats()
	out.mon.recorded += st.Recorded
	out.mon.filteredSetup += st.FilteredSetup
	out.mon.filteredStalls += st.FilteredStalls
	out.mon.probeRounds += st.ProbeRounds
	out.mon.stallsMeasured += st.StallsMeasured
	out.mon.legacyFallbacks += st.LegacyFallbacks
	for i, v := range st.ByFPClass {
		out.mon.byFPClass[i] += v
	}
	out.overhead.Devices++
	out.overhead.MeanCPUUtilization += o.CPUUtilization()
	if u := o.CPUUtilization(); u > out.overhead.MaxCPUUtilization {
		out.overhead.MaxCPUUtilization = u
	}
	if o.MemoryPeakBytes > out.overhead.MaxMemoryBytes {
		out.overhead.MaxMemoryBytes = o.MemoryPeakBytes
	}
	if o.StorageBytes > out.overhead.MaxStorageBytes {
		out.overhead.MaxStorageBytes = o.StorageBytes
	}
	if o.NetworkBytes > out.overhead.MaxNetworkBytes {
		out.overhead.MaxNetworkBytes = o.NetworkBytes
	}
	out.overhead.TotalNetworkBytes += o.NetworkBytes
}

// sortCanonical orders a worker's buffered events by the canonical merge
// key: virtual start time, then device ID, then per-device record index.
// Both runner modes append a device's events in its recording order, so a
// stable sort on (Start, DeviceID) realizes the full key without storing
// record indices. The key is a strict total order independent of how
// devices were partitioned across workers — the foundation of the
// worker-count-independent dataset ORDER contract (see DESIGN.md).
func sortCanonical(events []failure.Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].DeviceID < events[j].DeviceID
	})
}

// publishMerged k-way-merges the workers' canonically sorted event streams
// into one exact-size array and publishes it to the dataset as contiguous
// zero-copy segments (mirroring trace.FromEvents' partitioning). Workers
// own disjoint device ranges, so (Start, DeviceID) never ties across
// streams and the merge is a strict total order: the dataset's iteration
// order is byte-identical for any worker count.
func publishMerged(dataset *trace.Dataset, outs []shardOut) {
	total := 0
	for i := range outs {
		total += len(outs[i].events)
	}
	if total == 0 {
		return
	}
	merged := make([]failure.Event, 0, total)
	heads := make([]int, len(outs))
	for len(merged) < total {
		best := -1
		for w := range outs {
			if heads[w] >= len(outs[w].events) {
				continue
			}
			if best < 0 {
				best = w
				continue
			}
			a, b := &outs[w].events[heads[w]], &outs[best].events[heads[best]]
			if a.Start < b.Start || (a.Start == b.Start && a.DeviceID < b.DeviceID) {
				best = w
			}
		}
		merged = append(merged, outs[best].events[heads[best]])
		heads[best]++
	}
	ns := dataset.NumShards()
	base, rem := total/ns, total%ns
	off := 0
	for sh := 0; sh < ns; sh++ {
		n := base
		if sh < rem {
			n++
		}
		if n == 0 {
			continue
		}
		dataset.PublishShard(sh, merged[off:off+n:off+n])
		off += n
	}
}

// shardFlushAttempts bounds the end-of-shard upload retry loop;
// shardFlushAttemptsChaos is the budget under an injected network-fault
// campaign, where individual attempts are expected to fail.
const (
	shardFlushAttempts      = 3
	shardFlushAttemptsChaos = 200
)

// estimateClassMasses Monte-Carlo-estimates, per device class, the expected
// hazard mass of RAT transitions accumulated over one device's dwell chain
// under the *vanilla* policy. This converts the paper's transition-failure
// shares into per-transition probability constants that are properties of
// the environment, independent of the deployed policy — so the patched
// policy's avoidance of hazardous transitions genuinely removes failures.
// classMass carries the expected transition hazard mass per device class:
// total over all transitions, and the "risky" portion whose destination
// signal level is 0 or 1 (the avoidable cases of Figure 17).
type classMass struct {
	total, risky float64
}

func estimateClassMasses(network *simnet.Network, s Scenario) map[classKey]classMass {
	const chains = 400
	k := s.Calibration.DwellSamples
	if k < 2 {
		k = 2
	}
	out := make(map[classKey]classMass, 3)
	for _, class := range []classKey{
		{fiveG: false, android9: true},
		{fiveG: false, android9: false},
		{fiveG: true, android9: false},
	} {
		var pol android.RATPolicy = android.Android10Policy{}
		if class.android9 {
			pol = android.Android9Policy{}
		}
		r := rng.SplitIndexed(s.Seed, "class-mass", int(boolBit(class.fiveG))<<1|int(boolBit(class.android9)))
		var total, risky float64
		for c := 0; c < chains; c++ {
			isp := sampleISP(r)
			prev := simnet.Attachment{}
			cur := &android.RATOption{}
			hasPrev := false
			mobility := geo.NewMobility(r)
			for i := 0; i < k; i++ {
				region := mobility.Next(r)
				atts, opts := sampleCandidates(network, r, isp, class.fiveG, region)
				var choice int
				if hasPrev {
					if r.Bool(s.Calibration.StayProb) {
						atts = append(atts, prev)
						opts = append(opts, *cur)
					}
					choice = pol.Select(cur, opts)
				} else {
					choice = pol.Select(nil, opts)
				}
				att := atts[choice]
				if hasPrev && att.BS != nil && prev.BS != nil && att.RAT != prev.RAT {
					h := simnet.TransitionHazard(att)
					total += h
					if att.RAT == telephony.RAT5G && att.Level <= telephony.Level1 {
						risky += h
					}
				}
				prev = att
				*cur = android.RATOption{RAT: att.RAT, Level: att.Level}
				hasPrev = att.BS != nil
			}
		}
		out[class] = classMass{total: total / chains, risky: risky / chains}
	}
	return out
}

func boolBit(b bool) uint {
	if b {
		return 1
	}
	return 0
}
