package fleet

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/android"
	"repro/internal/device"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/telephony"
	"repro/internal/trace"
)

// Run executes a fleet scenario and returns the collected dataset and
// aggregates. Devices are sharded across workers, each with its own
// discrete-event clock and RNG stream; runs are deterministic for a given
// seed regardless of worker count.
func Run(s Scenario) (*Result, error) {
	runStart := time.Now()
	defer func() { mRunSeconds.Observe(time.Since(runStart).Seconds()) }()
	s = s.withDefaults()
	netRng := rng.New(s.Seed)
	network, err := simnet.Generate(simnet.DefaultDeployment(s.NumBS), netRng.Split("deployment"))
	if err != nil {
		return nil, fmt.Errorf("fleet: generate deployment: %w", err)
	}
	models := device.Models()
	modelWeights := make([]float64, len(models))
	for i, m := range models {
		modelWeights[i] = m.UserShare
	}
	modelPick := rng.NewCategorical(modelWeights)

	dataset := trace.NewDataset()
	refMass := estimateClassMasses(network, s)

	// Compile the fault campaign against the generated deployment. The
	// injector is read-only after compilation and shared by every shard;
	// its station selection draws from (seed, rule name) streams, so the
	// same campaign darkens the same stations for any worker count.
	inj, err := faultinject.Compile(s.Faults, network.Stations, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("fleet: compile fault campaign: %w", err)
	}

	workers := s.Workers
	if workers > s.NumDevices {
		workers = s.NumDevices
	}
	if workers < 1 {
		workers = 1
	}
	outs := make([]shardOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := s.NumDevices * w / workers
		hi := s.NumDevices * (w + 1) / workers
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[w] = runShard(&s, network, dataset, modelPick, refMass, inj, w, lo, hi)
		}()
	}
	wg.Wait()

	res := &Result{Scenario: s, Dataset: dataset, Network: network}
	var cpuSum float64
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.Population.Add(&o.state.pop)
		res.Transitions.Add(&o.state.trans)
		res.Dwell.Add(&o.state.dwell)
		res.Integrity.Add(&o.integrity)
		res.Monitor.Recorded += o.mon.recorded
		res.Monitor.FilteredSetup += o.mon.filteredSetup
		res.Monitor.FilteredStalls += o.mon.filteredStalls
		res.Monitor.ProbeRounds += o.mon.probeRounds
		res.Monitor.StallsMeasured += o.mon.stallsMeasured
		res.Monitor.LegacyFallbacks += o.mon.legacyFallbacks
		for i, v := range o.mon.byFPClass {
			res.Monitor.ByFPClass[i] += v
		}
		res.Overhead.Devices += o.overhead.Devices
		cpuSum += o.overhead.MeanCPUUtilization * float64(o.overhead.Devices)
		if o.overhead.MaxCPUUtilization > res.Overhead.MaxCPUUtilization {
			res.Overhead.MaxCPUUtilization = o.overhead.MaxCPUUtilization
		}
		if o.overhead.MaxMemoryBytes > res.Overhead.MaxMemoryBytes {
			res.Overhead.MaxMemoryBytes = o.overhead.MaxMemoryBytes
		}
		if o.overhead.MaxStorageBytes > res.Overhead.MaxStorageBytes {
			res.Overhead.MaxStorageBytes = o.overhead.MaxStorageBytes
		}
		if o.overhead.MaxNetworkBytes > res.Overhead.MaxNetworkBytes {
			res.Overhead.MaxNetworkBytes = o.overhead.MaxNetworkBytes
		}
		res.Overhead.TotalNetworkBytes += o.overhead.TotalNetworkBytes
		res.RecordedDigest.Add(o.recordedDigest)
		res.RecordedEvents += o.recordedEvents
	}
	if res.Overhead.Devices > 0 {
		res.Overhead.MeanCPUUtilization = cpuSum / float64(res.Overhead.Devices)
	}
	res.Faults = inj.Report()
	return res, nil
}

// shardOut is one worker's harvest.
type shardOut struct {
	state     *shardState
	mon       monitorAgg
	overhead  OverheadSummary
	integrity IntegrityReport
	// recordedDigest/recordedEvents summarize the events this shard's
	// devices recorded, accumulated before the uploader (and any injected
	// network fault) touches them — the ground truth side of invariant I4.
	recordedDigest trace.Digest
	recordedEvents int64
	err            error
}

type monitorAgg struct {
	recorded, filteredSetup, filteredStalls int
	probeRounds, stallsMeasured             int
	legacyFallbacks                         int
	byFPClass                               [failure.NumFalsePositiveClasses]int
}

// runShard simulates devices [lo, hi) on a private clock. shard is the
// worker index, used only as a metrics label.
func runShard(s *Scenario, network *simnet.Network, dataset *trace.Dataset, modelPick *rng.Categorical, refMass map[classKey]classMass, inj *faultinject.Injector, shard, lo, hi int) (out shardOut) {
	shardStart := time.Now()
	mShardsStarted.Inc()
	mShardsActive.Add(1)
	defer func() {
		mShardsActive.Add(-1)
		mShardsDone.Inc()
		mShardSeconds.Observe(time.Since(shardStart).Seconds())
	}()

	clock := simclock.NewScheduler()
	state := &shardState{refMass: refMass}
	out.state = state

	// Event delivery: direct append (buffered locally) or TCP upload.
	// The sink wrapper bumps the fleet-wide event counter; it is a bare
	// atomic add, so the hot path stays allocation-free and shard
	// determinism is untouched.
	var buffer []failure.Event
	var uploader *trace.Uploader
	if s.UploadAddr != "" {
		uploader = trace.NewUploader(s.UploadAddr, uint64(lo))
		// Short, seeded backoff: the collector is local, so retries are
		// cheap; the jitter stream is split per shard so retry timing never
		// couples shards (and cannot perturb the simulation, which runs on
		// its own virtual clock).
		uploader.SetBackoff(2*time.Millisecond, 50*time.Millisecond,
			rng.SplitIndexed(s.Seed, "uploader-backoff", lo))
		if s.UploadBufferLimit > 0 {
			uploader.BufferLimit = s.UploadBufferLimit
		}
		if s.UploadSpillDir != "" {
			if err := uploader.EnableSpill(s.UploadSpillDir); err != nil {
				out.err = fmt.Errorf("fleet: enable upload spill: %w", err)
				return out
			}
		}
		if inj.HasNetworkFaults() {
			uploader.SetChaos(inj)
		}
		defer uploader.Close()
	}
	state.sink = func(e failure.Event) {
		mEvents.Inc()
		if uploader != nil {
			// Digest before upload: this is what the device observed, the
			// reference the collector's dataset must reproduce exactly.
			out.recordedDigest.Add(trace.EventDigest(&e))
			out.recordedEvents++
			uploader.Record(e)
			return
		}
		buffer = append(buffer, e)
	}

	// Sample this shard's event-queue depth every simulated hour. The
	// sampler only reads clock state and writes an atomic gauge: it
	// cannot perturb the simulation (no RNG draws, no device state).
	depth := mQueueDepth.With(strconv.Itoa(shard))
	var sampleDepth func()
	sampleDepth = func() {
		depth.Set(float64(clock.QueueLen()))
		clock.After(time.Hour, sampleDepth)
	}
	clock.After(time.Hour, sampleDepth)

	models := device.Models()
	actors := make([]*actor, 0, hi-lo)
	for i := lo; i < hi; i++ {
		r := rng.SplitIndexed(s.Seed, "device", i)
		m := models[modelPick.Draw(r)]
		actors = append(actors, newActor(uint64(i+1), m, clock, r, s, network, state, inj))
	}

	// Run the window plus slack for in-flight episodes to conclude.
	executed := clock.Run(s.Window + 2*time.Hour)
	mSimEvents.Add(int64(executed))
	mDevices.Add(int64(hi - lo))
	depth.Set(0)

	for _, a := range actors {
		switch a.dc.State() {
		case android.DcInactive, android.DcActive:
		default:
			out.integrity.Wedged++
		}
		if a.inSetup {
			out.integrity.OpenSetups++
		}
		if a.busy {
			out.integrity.OpenEpisodes++
		}
		o := a.mon.Overhead()
		st := a.mon.Stats()
		out.mon.recorded += st.Recorded
		out.mon.filteredSetup += st.FilteredSetup
		out.mon.filteredStalls += st.FilteredStalls
		out.mon.probeRounds += st.ProbeRounds
		out.mon.stallsMeasured += st.StallsMeasured
		out.mon.legacyFallbacks += st.LegacyFallbacks
		for i, v := range st.ByFPClass {
			out.mon.byFPClass[i] += v
		}
		out.overhead.Devices++
		out.overhead.MeanCPUUtilization += o.CPUUtilization()
		if u := o.CPUUtilization(); u > out.overhead.MaxCPUUtilization {
			out.overhead.MaxCPUUtilization = u
		}
		if o.MemoryPeakBytes > out.overhead.MaxMemoryBytes {
			out.overhead.MaxMemoryBytes = o.MemoryPeakBytes
		}
		if o.StorageBytes > out.overhead.MaxStorageBytes {
			out.overhead.MaxStorageBytes = o.StorageBytes
		}
		if o.NetworkBytes > out.overhead.MaxNetworkBytes {
			out.overhead.MaxNetworkBytes = o.NetworkBytes
		}
		out.overhead.TotalNetworkBytes += o.NetworkBytes
	}
	if out.overhead.Devices > 0 {
		out.overhead.MeanCPUUtilization /= float64(out.overhead.Devices)
	}

	if uploader != nil {
		uploader.SetWiFi(true)
		// The end-of-shard flush is the one upload that must not be lost;
		// retry transient collector failures before surfacing the error,
		// counting retries for the dashboard. Under an injected network
		// fault campaign every attempt can fail with high probability, so
		// the budget rises accordingly — at-least-once is only as good as
		// the sender's persistence, and the collector dedups the rest.
		attempts := shardFlushAttempts
		if inj.HasNetworkFaults() {
			attempts = shardFlushAttemptsChaos
		}
		var err error
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				mUploadRetries.Inc()
				if d := uploader.RetryDelay(); d > 0 {
					time.Sleep(d)
				} else {
					time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
				}
			}
			if err = uploader.Flush(); err == nil {
				break
			}
		}
		if err != nil {
			out.err = fmt.Errorf("fleet: upload shard events: %w", err)
		}
	} else {
		// Pin the shard to the worker index: appends from different
		// workers never contend, and a fixed seed yields the same
		// dataset iteration order for any worker count.
		dataset.AppendShard(shard, buffer...)
	}
	return out
}

// shardFlushAttempts bounds the end-of-shard upload retry loop;
// shardFlushAttemptsChaos is the budget under an injected network-fault
// campaign, where individual attempts are expected to fail.
const (
	shardFlushAttempts      = 3
	shardFlushAttemptsChaos = 200
)

// estimateClassMasses Monte-Carlo-estimates, per device class, the expected
// hazard mass of RAT transitions accumulated over one device's dwell chain
// under the *vanilla* policy. This converts the paper's transition-failure
// shares into per-transition probability constants that are properties of
// the environment, independent of the deployed policy — so the patched
// policy's avoidance of hazardous transitions genuinely removes failures.
// classMass carries the expected transition hazard mass per device class:
// total over all transitions, and the "risky" portion whose destination
// signal level is 0 or 1 (the avoidable cases of Figure 17).
type classMass struct {
	total, risky float64
}

func estimateClassMasses(network *simnet.Network, s Scenario) map[classKey]classMass {
	const chains = 400
	k := s.Calibration.DwellSamples
	if k < 2 {
		k = 2
	}
	out := make(map[classKey]classMass, 3)
	for _, class := range []classKey{
		{fiveG: false, android9: true},
		{fiveG: false, android9: false},
		{fiveG: true, android9: false},
	} {
		var pol android.RATPolicy = android.Android10Policy{}
		if class.android9 {
			pol = android.Android9Policy{}
		}
		r := rng.SplitIndexed(s.Seed, "class-mass", int(boolBit(class.fiveG))<<1|int(boolBit(class.android9)))
		var total, risky float64
		for c := 0; c < chains; c++ {
			isp := sampleISP(r)
			prev := simnet.Attachment{}
			cur := &android.RATOption{}
			hasPrev := false
			mobility := geo.NewMobility(r)
			for i := 0; i < k; i++ {
				region := mobility.Next(r)
				atts, opts := sampleCandidates(network, r, isp, class.fiveG, region)
				var choice int
				if hasPrev {
					if r.Bool(s.Calibration.StayProb) {
						atts = append(atts, prev)
						opts = append(opts, *cur)
					}
					choice = pol.Select(cur, opts)
				} else {
					choice = pol.Select(nil, opts)
				}
				att := atts[choice]
				if hasPrev && att.BS != nil && prev.BS != nil && att.RAT != prev.RAT {
					h := simnet.TransitionHazard(att)
					total += h
					if att.RAT == telephony.RAT5G && att.Level <= telephony.Level1 {
						risky += h
					}
				}
				prev = att
				*cur = android.RATOption{RAT: att.RAT, Level: att.Level}
				hasPrev = att.BS != nil
			}
		}
		out[class] = classMass{total: total / chains, risky: risky / chains}
	}
	return out
}

func boolBit(b bool) uint {
	if b {
		return 1
	}
	return 0
}
