package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// benchScenario builds the standard fleet-benchmark configuration: a fixed
// seed, compressed virtual time, and the default four workers. The window
// shrinks as the fleet grows so every tier finishes in benchmarkable time
// while still exercising months-equivalent event volume in aggregate.
func benchScenario(devices int, window time.Duration, legacy bool) Scenario {
	s := Scenario{
		Seed:       1234,
		NumDevices: devices,
		Workers:    4,
		Window:     window,
	}
	s.legacyShardQueue = legacy
	return s
}

// runBench executes one scenario under the benchmark timer and reports
// device- and event-throughput metrics.
func runBench(b *testing.B, s Scenario) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Dataset.Len() == 0 && s.UploadAddr == "" {
			b.Fatal("benchmark run produced no events")
		}
		b.ReportMetric(float64(res.Dataset.Len()), "events/op")
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(s.NumDevices)*float64(b.N)/elapsed, "devices/s")
	}
}

// BenchmarkFleet is the fleet-runner benchmark family (see README "Fleet
// benchmark"). The 10k tiers always run and are what CI's bench-smoke
// exercises; the 100k tiers (the BENCH_fleet.json reference configuration)
// run when BENCH_FLEET_LARGE is set, and the million-device tier when
// BENCH_FLEET_1M is set. Each lane tier has a legacy twin running the
// shared-queue architecture, so one binary measures the speedup ratio on
// whatever hardware it lands on.
func BenchmarkFleet(b *testing.B) {
	b.Run("lane-10k-24h", func(b *testing.B) {
		runBench(b, benchScenario(10_000, 24*time.Hour, false))
	})
	b.Run("legacy-10k-24h", func(b *testing.B) {
		runBench(b, benchScenario(10_000, 24*time.Hour, true))
	})
	b.Run("lane-100k-72h", func(b *testing.B) {
		if os.Getenv("BENCH_FLEET_LARGE") == "" {
			b.Skip("set BENCH_FLEET_LARGE to run the 100k-device tier")
		}
		runBench(b, benchScenario(100_000, 72*time.Hour, false))
	})
	b.Run("legacy-100k-72h", func(b *testing.B) {
		if os.Getenv("BENCH_FLEET_LARGE") == "" {
			b.Skip("set BENCH_FLEET_LARGE to run the 100k-device tier")
		}
		runBench(b, benchScenario(100_000, 72*time.Hour, true))
	})
	b.Run("lane-1m-24h", func(b *testing.B) {
		if os.Getenv("BENCH_FLEET_1M") == "" {
			b.Skip("set BENCH_FLEET_1M to run the million-device tier")
		}
		runBench(b, benchScenario(1_000_000, 24*time.Hour, false))
	})
}

// fleetBenchEntry is one BENCH_fleet.json record. LegacySeconds and
// Speedup compare the lane runner against the legacy shared-queue
// architecture in the same binary, so the ratio is meaningful across
// hardware generations even though absolute seconds are not.
type fleetBenchEntry struct {
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Devices       int     `json:"devices"`
	WindowHours   int     `json:"window_hours"`
	Workers       int     `json:"workers"`
	Events        int     `json:"events"`
	LegacySeconds float64 `json:"legacy_seconds"`
	LaneSeconds   float64 `json:"lane_seconds"`
	Speedup       float64 `json:"speedup"`
}

// TestWriteFleetBenchArtifact times the legacy shared-queue runner against
// the lane runner on the reference configuration (100k devices, 72 h of
// virtual time; override with BENCH_FLEET_DEVICES / BENCH_FLEET_WINDOW_H)
// and appends the result to the JSON file named by BENCH_FLEET_OUT. It is
// skipped in normal test runs; CI's fleet-bench job and the recorded
// BENCH_fleet.json entries come from here.
//
// When BENCH_FLEET_BASELINE names a committed artifact, the test FAILS if
// the measured lane-vs-legacy speedup falls below 85% of the baseline's
// most recent entry for the same configuration — the CI regression gate.
// The two arms also cross-check: they must produce identical event counts
// and identical ordered digests (the lane runner is only a valid
// optimization while it is bit-equivalent).
func TestWriteFleetBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("set BENCH_FLEET_OUT to record a benchmark artifact")
	}
	date := os.Getenv("BENCH_FLEET_DATE") // keep artifacts reproducible in CI

	devices := envInt(t, "BENCH_FLEET_DEVICES", 100_000)
	windowH := envInt(t, "BENCH_FLEET_WINDOW_H", 72)
	window := time.Duration(windowH) * time.Hour

	time1 := func(legacy bool, workers int) (float64, int, [32]byte) {
		s := benchScenario(devices, window, legacy)
		s.Workers = workers
		start := time.Now()
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		sec := time.Since(start).Seconds()
		return sec, res.Dataset.Len(), orderedDigest(t, res)
	}
	laneSec, laneEvents, laneDigest := time1(false, 4)
	legacySec, legacyEvents, legacyDigest := time1(true, 4)
	if laneEvents != legacyEvents || laneDigest != legacyDigest {
		t.Fatalf("lane/legacy divergence: %d vs %d events, digests equal=%v",
			laneEvents, legacyEvents, laneDigest == legacyDigest)
	}
	// Workers=1 vs 4 on the benchmarked configuration: the ordered digest
	// must be byte-identical (the untimed arm also guards the gate against
	// a determinism break masquerading as a speedup).
	if _, w1Events, w1Digest := time1(false, 1); w1Events != laneEvents || w1Digest != laneDigest {
		t.Fatalf("workers=1 divergence: %d vs %d events, digests equal=%v",
			w1Events, laneEvents, w1Digest == laneDigest)
	}

	entry := fleetBenchEntry{
		Date:          date,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Devices:       devices,
		WindowHours:   windowH,
		Workers:       4,
		Events:        laneEvents,
		LegacySeconds: legacySec,
		LaneSeconds:   laneSec,
		Speedup:       legacySec / laneSec,
	}

	if baseline := os.Getenv("BENCH_FLEET_BASELINE"); baseline != "" {
		gateFleetBench(t, baseline, entry)
	}

	var entries []fleetBenchEntry
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			t.Fatalf("existing %s is not a fleetBenchEntry list: %v", out, err)
		}
	}
	entries = append(entries, entry)
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("fleet %dk/%dh: legacy %.3fs lane %.3fs speedup %.2fx -> %s\n",
		devices/1000, windowH, legacySec, laneSec, entry.Speedup, out)
}

// gateFleetBench fails the test if entry's speedup regressed more than 15%
// below the baseline artifact's most recent entry for the same (devices,
// window) configuration. Comparing speedup ratios — not absolute seconds —
// normalizes away the hardware difference between the machine that
// committed the baseline and the machine running the gate.
func gateFleetBench(t *testing.T, path string, entry fleetBenchEntry) {
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read baseline %s: %v", path, err)
	}
	var entries []fleetBenchEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("baseline %s is not a fleetBenchEntry list: %v", path, err)
	}
	base := fleetBenchEntry{}
	for _, e := range entries {
		if e.Devices == entry.Devices && e.WindowHours == entry.WindowHours && e.Speedup > 0 {
			base = e // last matching entry wins: the most recent recording
		}
	}
	if base.Speedup == 0 {
		t.Logf("baseline %s has no entry for %d devices / %dh; gate skipped",
			path, entry.Devices, entry.WindowHours)
		return
	}
	const tolerance = 0.85
	if entry.Speedup < base.Speedup*tolerance {
		t.Fatalf("fleet bench regression: lane speedup %.2fx is below 85%% of the %s baseline %.2fx",
			entry.Speedup, base.Date, base.Speedup)
	}
	t.Logf("fleet bench gate: %.2fx vs baseline %.2fx (floor %.2fx)",
		entry.Speedup, base.Speedup, base.Speedup*tolerance)
}

func envInt(t *testing.T, name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		t.Fatalf("%s=%q: want a positive integer", name, v)
	}
	return n
}
