package fleet

import (
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/trace/ring"
)

// TestUploadRouterAcrossCollectorFleet points a Scenario at a
// 3-collector fleet through Scenario.UploadRouter: every shard uploader
// resolves its target off the consistent-hash ring, the shared dataset
// ends up with exactly the recorded events, and the durable union across
// the members' segment stores carries the same multiset.
func TestUploadRouterAcrossCollectorFleet(t *testing.T) {
	direct := runFleet(t, baseScenario(300))

	ds := trace.NewDataset()
	fc, err := ring.StartFleet(3, ds, ring.FleetOptions{
		Seed:   42,
		VNodes: 64,
		Dir:    t.TempDir(),
		Store:  trace.SegStoreOptions{SegmentSize: 1 << 20, Checkpoint: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	s := baseScenario(300)
	s.UploadRouter = fc.Router()
	res := runFleet(t, s)

	if ds.Len() != direct.Dataset.Len() {
		t.Errorf("fleet upload delivered %d events, direct run produced %d", ds.Len(), direct.Dataset.Len())
	}
	if int64(ds.Len()) != res.RecordedEvents {
		t.Errorf("dataset holds %d events, shards recorded %d", ds.Len(), res.RecordedEvents)
	}
	if ds.MultisetDigest() != res.RecordedDigest {
		t.Errorf("dataset digest %s != recorded digest %s", ds.MultisetDigest(), res.RecordedDigest)
	}

	// The ring must actually spread the shard uploaders: after sealing,
	// more than one member's store holds events.
	if err := fc.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := fc.CloseStores(); err != nil {
		t.Fatal(err)
	}
	var stored trace.Digest
	storedEvents, nonEmpty := 0, 0
	for _, src := range fc.Sources() {
		events := 0
		for _, info := range src.Store.Segments() {
			err := src.Store.ReadSegment(info.ID, func(b *trace.Batch) error {
				for i := range b.Events {
					stored.Add(trace.EventDigest(&b.Events[i]))
				}
				events += len(b.Events)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if events > 0 {
			nonEmpty++
		}
		storedEvents += events
	}
	if nonEmpty < 2 {
		t.Errorf("only %d of 3 collectors stored events — the router did not spread the shards", nonEmpty)
	}
	if int64(storedEvents) != res.RecordedEvents || stored != res.RecordedDigest {
		t.Errorf("segment union: %d events digest %s, recorded %d digest %s",
			storedEvents, stored, res.RecordedEvents, res.RecordedDigest)
	}
}
