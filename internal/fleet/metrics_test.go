package fleet

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestRunUpdatesMetrics verifies the runner's wiring into the process
// registry: a fleet run moves the device, shard, scheduler-event, and
// recorded-event counters by the expected amounts (deltas, because the
// registry is process-wide and other tests run fleets too).
func TestRunUpdatesMetrics(t *testing.T) {
	reg := metrics.Default()
	val := func(name string) float64 {
		v, ok := reg.Value(name)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		return v
	}
	devices0 := val("fleet_devices_simulated_total")
	shards0 := val("fleet_shards_completed_total")
	simEvents0 := val("fleet_sim_events_total")
	recorded0 := val("monitor_events_recorded_total")
	fleetEvents0 := val("fleet_events_recorded_total")

	res, err := Run(Scenario{Seed: 5, NumDevices: 60, Workers: 3, Window: 5 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	if d := val("fleet_devices_simulated_total") - devices0; d != 60 {
		t.Errorf("devices counter moved by %v, want 60", d)
	}
	if d := val("fleet_shards_completed_total") - shards0; d != 3 {
		t.Errorf("shards counter moved by %v, want 3", d)
	}
	if d := val("fleet_sim_events_total") - simEvents0; d <= 0 {
		t.Errorf("sim-events counter moved by %v, want > 0", d)
	}
	if d := val("monitor_events_recorded_total") - recorded0; d != float64(res.Monitor.Recorded) {
		t.Errorf("recorded counter moved by %v, want %d", d, res.Monitor.Recorded)
	}
	if d := val("fleet_events_recorded_total") - fleetEvents0; d != float64(res.Dataset.Len()) {
		t.Errorf("fleet events counter moved by %v, want %d", d, res.Dataset.Len())
	}
	if c, _ := reg.Value("fleet_shard_walltime_seconds"); c <= 0 {
		t.Error("shard walltime histogram recorded no observations")
	}
}
