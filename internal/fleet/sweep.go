package fleet

import (
	"fmt"
	"time"

	"repro/internal/failure"
)

// SweepPoint names one scenario variant in a parameter sweep.
type SweepPoint struct {
	Name     string
	Scenario Scenario
}

// SweepMetrics are the per-variant headline metrics ablation studies
// compare.
type SweepMetrics struct {
	Name string
	// Events is the total recorded failure count.
	Events int
	// Prevalence is the fraction of devices with at least one failure.
	Prevalence float64
	// FiveGFrequency is failures per 5G device.
	FiveGFrequency float64
	// MeanStallSeconds is the mean Data_Stall duration.
	MeanStallSeconds float64
	// FilteredFalsePositives counts suspicious events the monitor dropped.
	FilteredFalsePositives int
}

// Sweep runs each variant and extracts its metrics. Runs execute
// sequentially so their internal worker shards don't contend.
func Sweep(points []SweepPoint) ([]SweepMetrics, error) {
	out := make([]SweepMetrics, 0, len(points))
	for _, p := range points {
		res, err := Run(p.Scenario)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep %q: %w", p.Name, err)
		}
		out = append(out, ExtractMetrics(p.Name, res))
	}
	return out, nil
}

// ExtractMetrics summarizes one run for sweep comparison.
func ExtractMetrics(name string, res *Result) SweepMetrics {
	m := SweepMetrics{Name: name, Events: res.Dataset.Len()}
	devices := map[uint64]bool{}
	fiveGEvents := 0
	var stallDur time.Duration
	stalls := 0
	res.Dataset.Each(func(e *failure.Event) {
		devices[e.DeviceID] = true
		if e.FiveGCapable {
			fiveGEvents++
		}
		if e.Kind == failure.DataStall {
			stallDur += e.Duration
			stalls++
		}
	})
	if res.Population.Total > 0 {
		m.Prevalence = float64(len(devices)) / float64(res.Population.Total)
	}
	if res.Population.FiveG > 0 {
		m.FiveGFrequency = float64(fiveGEvents) / float64(res.Population.FiveG)
	}
	if stalls > 0 {
		m.MeanStallSeconds = stallDur.Seconds() / float64(stalls)
	}
	m.FilteredFalsePositives = res.Monitor.FilteredSetup + res.Monitor.FilteredStalls
	return m
}
