package fleet

import "repro/internal/metrics"

// Fleet-runner metrics, registered on the process-wide registry at
// init. Handles are package-level so the per-event sink path is a bare
// atomic increment (zero allocations; see BenchmarkCounterInc).
var (
	mDevices = metrics.NewCounter("fleet_devices_simulated_total",
		"Devices whose full measurement window has been simulated.")
	mShardsStarted = metrics.NewCounter("fleet_shards_started_total",
		"Worker shards launched by fleet.Run.")
	mShardsDone = metrics.NewCounter("fleet_shards_completed_total",
		"Worker shards that finished (including failed ones).")
	mShardsActive = metrics.NewGauge("fleet_shards_active",
		"Worker shards currently simulating.")
	mEvents = metrics.NewCounter("fleet_events_recorded_total",
		"Failure events delivered to the shard sinks (post-filter).")
	mSimEvents = metrics.NewCounter("fleet_sim_events_total",
		"Discrete-event scheduler events executed across all shards.")
	mUploadRetries = metrics.NewCounter("fleet_upload_flush_retries_total",
		"End-of-shard uploader flushes that had to be retried.")
	mShardSeconds = metrics.NewHistogram("fleet_shard_walltime_seconds",
		"Wall-clock seconds one shard took to simulate its device range.")
	mRunSeconds = metrics.NewHistogram("fleet_run_walltime_seconds",
		"Wall-clock seconds for a whole fleet.Run.")
	mQueueDepth = metrics.NewGaugeVec("fleet_shard_queue_depth",
		"Pending event-queue length per shard, sampled every simulated hour.", "shard")
)
