package fleet

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// testCampaign exercises every fault class at once: a blackout, a flap, a
// regional RSS degradation, an ISP setup storm with forced causes, a RAT
// downgrade, and a stall storm, all inside the default window.
func testCampaign() *faultinject.Campaign {
	ispA, ispB := simnet.ISPA, simnet.ISPB
	urban, rural := geo.Urban, geo.Rural
	return &faultinject.Campaign{
		Name: "test-all-classes",
		Rules: []faultinject.Rule{
			{Name: "blackout", Class: faultinject.ClassBSBlackout,
				Sel:   faultinject.Selector{ISP: &ispA, BSFraction: 0.3},
				Start: 30 * 24 * time.Hour, Window: 20 * 24 * time.Hour},
			{Name: "flap", Class: faultinject.ClassBSFlap,
				Sel:   faultinject.Selector{Region: &urban, BSFraction: 0.25},
				Start: 80 * 24 * time.Hour, Window: 15 * 24 * time.Hour,
				Period: 8 * time.Hour, DutyDown: 0.5},
			{Name: "rss", Class: faultinject.ClassRSSDegrade,
				Sel:   faultinject.Selector{Region: &rural},
				Start: 10 * 24 * time.Hour, Window: 30 * 24 * time.Hour, Intensity: 2},
			{Name: "storm", Class: faultinject.ClassSetupStorm,
				Sel:   faultinject.Selector{ISP: &ispB},
				Start: 50 * 24 * time.Hour, Window: 25 * 24 * time.Hour, Intensity: 2,
				Causes: []telephony.FailCause{telephony.CauseEMMAccessBarred, telephony.CauseInvalidEMMState}},
			{Name: "downgrade", Class: faultinject.ClassRATDowngrade,
				Sel:   faultinject.Selector{ISP: &ispA, RAT: telephony.RAT5G},
				Start: 100 * 24 * time.Hour, Window: 20 * 24 * time.Hour},
			{Name: "stalls", Class: faultinject.ClassStallStorm,
				Sel:   faultinject.Selector{},
				Start: 150 * 24 * time.Hour, Window: 20 * 24 * time.Hour, Intensity: 1},
		},
	}
}

// digest canonically serializes everything a run produces — every event
// with its full in-situ context, the aggregate matrices, the population,
// the integrity report, and the fault report — and hashes it. Two runs
// are "byte-identical" iff their digests match.
func digest(t *testing.T, res *Result) [32]byte {
	t.Helper()
	lines := make([]string, 0, res.Dataset.Len())
	res.Dataset.Each(func(e *failure.Event) {
		trans := ""
		if e.Transition != nil {
			trans = fmt.Sprintf("%+v", *e.Transition)
		}
		ev := *e
		ev.Transition = nil
		lines = append(lines, fmt.Sprintf("%+v|%s", ev, trans))
	})
	// Dataset append order depends on shard completion order; the content
	// must not.
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		fmt.Fprintln(h, l)
	}
	fmt.Fprintf(h, "%+v\n%+v\n%+v\n%+v\n%+v\n",
		res.Population, res.Transitions, res.Dwell, res.Monitor, res.Integrity)
	if res.Faults != nil {
		fmt.Fprintf(h, "%+v\n", *res.Faults)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// TestDeterminismAcrossWorkerCountsWithFaults pins the worker-count
// independence contract for both calm and faulted runs: the same scenario
// at Workers=1, 4, and 7 must produce byte-identical datasets, aggregates,
// and fault reports.
func TestDeterminismAcrossWorkerCountsWithFaults(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		name := "calm"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			var want [32]byte
			for i, workers := range []int{1, 4, 7} {
				s := Scenario{Seed: 99, NumDevices: 300, Workers: workers}
				if faulted {
					s.Faults = testCampaign()
				}
				res, err := Run(s)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				d := digest(t, res)
				if i == 0 {
					want = d
					if res.Dataset.Len() == 0 {
						t.Fatal("no events produced")
					}
					continue
				}
				if d != want {
					t.Errorf("workers=%d: digest %x != workers=1 digest %x", workers, d, want)
				}
			}
		})
	}
}

// TestFaultCampaignRecoveryInvariants runs the all-classes campaign once
// and asserts the chaos invariants at the API level: every episode-bearing
// rule injected work and recovered all of it, no device wedged, and the
// failure-kind mix shifted toward the injected classes.
func TestFaultCampaignRecoveryInvariants(t *testing.T) {
	calm := Scenario{Seed: 5, NumDevices: 500, Workers: 4}
	base, err := Run(calm)
	if err != nil {
		t.Fatal(err)
	}
	s := calm
	s.Faults = testCampaign()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil {
		t.Fatal("faulted run produced no fault report")
	}
	if n := res.Faults.Unresolved(); n != 0 {
		t.Errorf("unresolved injected episodes: %d\n%s", n, res.Faults)
	}
	for _, rr := range res.Faults.Rules {
		class, err := faultinject.ParseClass(rr.Class)
		if err != nil {
			t.Fatalf("report rule %q: %v", rr.Name, err)
		}
		if _, bearing := class.ExpectedKind(); bearing && rr.Injected == 0 {
			t.Errorf("rule %q (%s) injected nothing", rr.Name, rr.Class)
		}
	}
	if !res.Integrity.Clean() {
		t.Errorf("integrity violated: %+v", res.Integrity)
	}
	kindCount := func(r *Result, k failure.Kind) int {
		n := 0
		r.Dataset.Each(func(e *failure.Event) {
			if e.Kind == k {
				n++
			}
		})
		return n
	}
	for _, k := range []failure.Kind{failure.OutOfService, failure.DataSetupError, failure.DataStall} {
		if got, base := kindCount(res, k), kindCount(base, k); got <= base {
			t.Errorf("%v: faulted %d <= baseline %d, expected an upward shift", k, got, base)
		}
	}
	// The calm run must carry no fault report.
	if base.Faults != nil {
		t.Errorf("calm run unexpectedly carries a fault report: %+v", base.Faults)
	}
}

// TestFaultCampaignLeavesCalmRunUntouched pins that wiring a nil campaign
// through the runner changes nothing: a calm run before and after the
// fault-injection subsystem must be draw-for-draw identical, which the
// digest equality across this test's two runs (and the golden smoke test's
// committed histogram) witnesses.
func TestFaultCampaignLeavesCalmRunUntouched(t *testing.T) {
	s := Scenario{Seed: 123, NumDevices: 200, Workers: 3}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, a) != digest(t, b) {
		t.Error("identical calm scenarios produced different digests")
	}
	if a.Faults != nil {
		t.Errorf("calm run carries a fault report")
	}
}
