package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/failure"
)

// TestSnapshotRoundTripDeepEquality pins the persistence contract beyond
// the length/census spot checks of TestSnapshotRoundTrip: a result saved
// with SaveResult and read back with LoadResult carries the identical
// events (content AND order), aggregates, overhead, and scenario identity.
func TestSnapshotRoundTripDeepEquality(t *testing.T) {
	res := runFleet(t, Scenario{Seed: 11, NumDevices: 150, Workers: 3})
	if res.Dataset.Len() == 0 {
		t.Fatal("run produced no events")
	}
	path := filepath.Join(t.TempDir(), "run.snap.gz")
	if err := SaveResult(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Dataset.Events(), res.Dataset.Events()) {
		t.Error("events diverged across the snapshot round trip")
	}
	if got.Population != res.Population {
		t.Errorf("population: got %+v want %+v", got.Population, res.Population)
	}
	if got.Transitions != res.Transitions {
		t.Error("transition matrix diverged")
	}
	if got.Dwell != res.Dwell {
		t.Error("dwell stats diverged")
	}
	if got.Overhead != res.Overhead {
		t.Errorf("overhead: got %+v want %+v", got.Overhead, res.Overhead)
	}
	if got.Monitor != res.Monitor {
		t.Errorf("monitor stats: got %+v want %+v", got.Monitor, res.Monitor)
	}
	if len(got.Network.Stations) != len(res.Network.Stations) {
		t.Errorf("stations: got %d want %d", len(got.Network.Stations), len(res.Network.Stations))
	}
	if got.Scenario.Seed != res.Scenario.Seed || got.Scenario.NumDevices != res.Scenario.NumDevices ||
		got.Scenario.Window != res.Scenario.Window {
		t.Errorf("scenario identity lost: got %+v", got.Scenario)
	}

	// The restored result must be analyzable the same way: ExtractMetrics
	// over both sides agrees field for field.
	if a, b := ExtractMetrics("x", res), ExtractMetrics("x", got); a != b {
		t.Errorf("metrics diverged: %+v vs %+v", a, b)
	}
}

// TestSnapshotPreservesTransitionPointers checks that events carrying a
// TransitionInfo keep it through gob (pointer fields are easy to lose to
// nil-elision bugs).
func TestSnapshotPreservesTransitionPointers(t *testing.T) {
	res := runFleet(t, Scenario{Seed: 3, NumDevices: 400, Workers: 2})
	count := func(events []failure.Event) int {
		n := 0
		for i := range events {
			if events[i].Transition != nil {
				n++
			}
		}
		return n
	}
	want := count(res.Dataset.Events())
	if want == 0 {
		t.Skip("seed produced no transition-tagged events")
	}
	path := filepath.Join(t.TempDir(), "run.snap.gz")
	if err := SaveResult(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := count(got.Dataset.Events()); n != want {
		t.Errorf("transition-tagged events: got %d want %d", n, want)
	}
}

// TestLoadResultCorrupt covers the non-gzip payload failure path (the
// missing-file path lives in TestLoadResultMissing).
func TestLoadResultCorrupt(t *testing.T) {
	raw := filepath.Join(t.TempDir(), "raw")
	if err := os.WriteFile(raw, []byte("not a gzip stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResult(raw); err == nil {
		t.Error("non-gzip payload: want error")
	}
}

// TestSaveResultBadPath surfaces filesystem errors instead of losing them.
func TestSaveResultBadPath(t *testing.T) {
	res := runFleet(t, Scenario{Seed: 1, NumDevices: 5, Workers: 1})
	if err := SaveResult(filepath.Join(t.TempDir(), "no", "such", "dir", "x.gz"), res); err == nil {
		t.Error("want error for unwritable path")
	}
}

// TestSweepDeterministicAcrossWorkers pins that a sweep's extracted
// metrics are identical whether each variant runs on one worker or four —
// the sweep-facing corollary of the runner's determinism contract.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) []SweepPoint {
		return []SweepPoint{
			{Name: "vanilla", Scenario: Scenario{Seed: 21, NumDevices: 120, Workers: workers}},
			{Name: "never5g", Scenario: Scenario{Seed: 21, NumDevices: 120, Workers: workers, Policy: PolicyNever5G}},
		}
	}
	m1, err := Sweep(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Sweep(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m4) {
		t.Errorf("sweep metrics diverged across worker counts:\n1: %+v\n4: %+v", m1, m4)
	}
	for _, m := range m1 {
		if m.Events == 0 {
			t.Errorf("%s: sweep variant produced no events", m.Name)
		}
	}
}

// TestSweepSurfacesRunErrors checks a failing variant aborts the sweep
// with its name attached.
func TestSweepSurfacesRunErrors(t *testing.T) {
	_, err := Sweep([]SweepPoint{{
		Name: "bad-upload",
		// An unreachable collector makes Run fail after its flush retries
		// (a fleet this size always records events, so the flush is real).
		Scenario: Scenario{Seed: 1, NumDevices: 200, Workers: 1, UploadAddr: "127.0.0.1:1"},
	}})
	if err == nil {
		t.Fatal("want error from unreachable collector")
	}
	if got := err.Error(); !strings.Contains(got, "bad-upload") {
		t.Errorf("error does not name the failing variant: %v", got)
	}
}
