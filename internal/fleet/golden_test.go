package fleet

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/failure"
)

var updateGolden = flag.Bool("update", false, "rewrite golden test fixtures")

// goldenHistogram is the committed fingerprint of a fixed-seed run: the
// per-kind failure histogram for the calm and the faulted variant of one
// small scenario. Any change to the simulator's draw sequence — a
// reordered RNG call, a new sample on the base stream, a changed default —
// shows up here before it shows up in a full-size reproduction run.
type goldenHistogram struct {
	Scenario string         `json:"scenario"`
	Events   int            `json:"events"`
	Kinds    map[string]int `json:"kinds"`
}

func histogram(res *Result, name string) goldenHistogram {
	g := goldenHistogram{Scenario: name, Kinds: make(map[string]int)}
	res.Dataset.Each(func(e *failure.Event) {
		g.Events++
		g.Kinds[e.Kind.String()]++
	})
	return g
}

// TestGoldenFailureHistogram pins the failure-class histogram of a small
// fixed-seed scenario, calm and under the all-classes test campaign,
// against testdata/golden_histograms.json. Run with -update to accept an
// intentional change to the draw sequence.
func TestGoldenFailureHistogram(t *testing.T) {
	calm := Scenario{Seed: 42, NumDevices: 150, Workers: 4, Window: 60 * 24 * time.Hour}
	faulted := calm
	faulted.Faults = testCampaign()

	var got []goldenHistogram
	for _, run := range []struct {
		name string
		scen Scenario
	}{{"calm", calm}, {"faulted", faulted}} {
		res, err := Run(run.scen)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		got = append(got, histogram(res, run.name))
	}

	path := filepath.Join("testdata", "golden_histograms.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/fleet -run GoldenFailureHistogram -update` to create it)", err)
	}
	var want []goldenHistogram
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("failure histogram drifted from %s.\nGot:\n%s\n\nIf the draw-sequence change is intentional, rerun with -update.", path, gotJSON)
	}
}
