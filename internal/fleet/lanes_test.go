package fleet

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/failure"
)

// orderedDigest canonically serializes a run like digest, but WITHOUT
// sorting the event lines: it hashes the dataset in iteration order. The
// canonical cross-worker merge promises the stronger contract that the
// dataset ORDER — not just its content — is independent of worker count
// and of the lane-vs-shared-queue runner architecture.
func orderedDigest(t *testing.T, res *Result) [32]byte {
	t.Helper()
	h := sha256.New()
	res.Dataset.Each(func(e *failure.Event) {
		trans := ""
		if e.Transition != nil {
			trans = fmt.Sprintf("%+v", *e.Transition)
		}
		ev := *e
		ev.Transition = nil
		fmt.Fprintf(h, "%+v|%s\n", ev, trans)
	})
	fmt.Fprintf(h, "%+v\n%+v\n%+v\n%+v\n%+v\n",
		res.Population, res.Transitions, res.Dwell, res.Monitor, res.Integrity)
	if res.Faults != nil {
		fmt.Fprintf(h, "%+v\n", *res.Faults)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// TestLaneRunnerEquivalence pins the load-bearing contract of the lane
// runner: simulating each device on its own reused lane produces the
// byte-identical ordered digest — events in identical order, identical
// aggregates, identical fault reports — as the legacy shared-queue
// architecture, for any worker count, calm and faulted.
func TestLaneRunnerEquivalence(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		name := "calm"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			arms := []struct {
				name    string
				workers int
				legacy  bool
			}{
				{"lane-w1", 1, false},
				{"lane-w4", 4, false},
				{"lane-w7", 7, false},
				{"legacy-w1", 1, true},
				{"legacy-w4", 4, true},
			}
			var want [32]byte
			for i, arm := range arms {
				s := Scenario{Seed: 99, NumDevices: 300, Workers: arm.workers}
				s.legacyShardQueue = arm.legacy
				if faulted {
					s.Faults = testCampaign()
				}
				res, err := Run(s)
				if err != nil {
					t.Fatalf("%s: %v", arm.name, err)
				}
				d := orderedDigest(t, res)
				if i == 0 {
					want = d
					if res.Dataset.Len() == 0 {
						t.Fatal("no events produced")
					}
					continue
				}
				if d != want {
					t.Errorf("%s ordered digest diverged from %s", arm.name, arms[0].name)
				}
			}
		})
	}
}

// TestDatasetOrderIsCanonical verifies the published dataset is sorted by
// the canonical (Start, DeviceID) key — the order the cross-worker merge
// guarantees regardless of partitioning.
func TestDatasetOrderIsCanonical(t *testing.T) {
	res := runFleet(t, Scenario{Seed: 7, NumDevices: 200, Workers: 3})
	var prev failure.Event
	first := true
	res.Dataset.Each(func(e *failure.Event) {
		if !first {
			if e.Start < prev.Start || (e.Start == prev.Start && e.DeviceID < prev.DeviceID) {
				t.Fatalf("dataset out of canonical order: (%v, dev %d) after (%v, dev %d)",
					e.Start, e.DeviceID, prev.Start, prev.DeviceID)
			}
		}
		prev = *e
		first = false
	})
	if first {
		t.Fatal("no events produced")
	}
}
