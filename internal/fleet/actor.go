package fleet

import (
	"time"

	"repro/internal/android"
	"repro/internal/device"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/monitor"
	"repro/internal/netprobe"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// plannedEpisode is one scheduled failure opportunity. It is a fused value
// record: the transition context and pinned attachment are embedded by
// value (with has-flags) rather than pointed to, so a device's whole plan
// lives in one contiguous slice and planning allocates nothing per episode.
type plannedEpisode struct {
	at   simclock.Time
	kind failure.Kind
	// transition is the RAT-transition context for transition-induced
	// episodes; valid iff hasTransition.
	transition    failure.TransitionInfo
	hasTransition bool
	// att pins the attachment context for transition-induced episodes
	// (the post-transition camp); valid iff hasAtt (base episodes sample
	// a hazard-tilted attachment instead).
	att    simnet.Attachment
	hasAtt bool
	// fp marks a false-positive episode: a suspicious event the monitor
	// must filter rather than record.
	fp bool
	// fault tags an episode injected by a campaign rule; its life cycle
	// (injected/recovered/dropped) is accounted on the rule.
	fault *faultinject.ActiveRule
	// cause forces the setup fail cause for setup-storm episodes
	// (CauseNone: sample from the environment mix).
	cause telephony.FailCause
	// dur pre-samples a fault episode's duration (stall auto-fix or OOS
	// span), capped so the episode concludes inside the run's slack.
	dur time.Duration
}

// transitionPtr returns the episode's transition context as the heap
// pointer the monitor retains into recorded events (nil for none). Each
// call copies: events must not alias plan scratch that a worker lane
// reuses for the next device.
func (ep *plannedEpisode) transitionPtr() *failure.TransitionInfo {
	if !ep.hasTransition {
		return nil
	}
	ti := ep.transition
	return &ti
}

// laneScratch is the reusable per-worker allocation arena. A worker lane
// simulates one device at a time, so every buffer a device needs during
// planning and episode execution can be recycled for the next device; the
// legacy shared-queue path gives each concurrently-live actor its own.
type laneScratch struct {
	fr           *rng.Source
	planned      []plannedEpisode
	transitions  []chainTransition
	chainAtts    []simnet.Attachment
	chainWeights []float64
	candAtts     []simnet.Attachment
	candOpts     []android.RATOption
	weights      []float64
	cum          []float64
	kindCum      []float64
	outcomes     []android.SetupOutcome
}

func newLaneScratch() *laneScratch {
	return &laneScratch{
		// Candidate slots: at most four RAT draws plus the sticky previous
		// camp, so capacity 8 means the chain walk never reallocates.
		candAtts: make([]simnet.Attachment, 0, 8),
		candOpts: make([]android.RATOption, 0, 8),
	}
}

// chainTransition is one hazardous RAT transition observed on the dwell
// chain, a candidate site for transition-induced failures.
type chainTransition struct {
	slot int
	att  simnet.Attachment
	info failure.TransitionInfo
	mass float64
}

// actor is one simulated Android-MOD device.
type actor struct {
	id    uint64
	model device.Model
	isp   simnet.ISPID

	clock *simclock.Scheduler
	r     *rng.Source
	scen  *Scenario
	cal   *Calibration
	net   *simnet.Network

	// inj is the compiled fault campaign (nil for calm runs); fr is the
	// device's dedicated fault stream. Keeping fault draws off the base
	// stream r means a campaign perturbs organic planning only through
	// the environment, never through RNG alignment.
	inj *faultinject.Injector
	fr  *rng.Source

	intensity device.Intensity
	policy    android.RATPolicy
	dual      android.DualConnectivity
	// kindCum is the device's failure-kind cumulative distribution, built
	// into lane scratch (see buildKindPick).
	kindCum []float64

	host     *netprobe.SimHost
	mon      *monitor.Service
	radio    *simRadio
	dc       *android.DataConnection
	detector *android.StallDetector
	engine   *android.RecoveryEngine
	service  *android.ServiceTracker
	diag     *android.DiagnosticsManager

	att  simnet.Attachment
	busy bool

	// episode-scoped state for the active stall.
	healTimer  *simclock.Timer
	resetTimer *simclock.Timer
	// pending transition context for the in-flight setup episode.
	inSetup         bool
	setupTransition *failure.TransitionInfo
	setupStart      simclock.Time
	setupCause      telephony.FailCause
	setupAttempts   int
	// active stall episode context.
	stallTransition *failure.TransitionInfo
	stallAutoFix    time.Duration
	// active Out_of_Service episode context.
	oosTransition *failure.TransitionInfo
	// campaign rules behind in-flight fault episodes, for life-cycle
	// accounting at conclusion.
	setupFault *faultinject.ActiveRule
	stallFault *faultinject.ActiveRule
	oosFault   *faultinject.ActiveRule

	events int

	// chainAtts/chainWeights hold the dwell chain's attachments and their
	// dwell×hazard weights; failure episodes draw their radio context from
	// this distribution so failure rates per context stay consistent with
	// dwell accounting. Backed by lane scratch.
	chainAtts    []simnet.Attachment
	chainWeights []float64

	// planned is the device's episode plan; episodes are dispatched by
	// index through runPlannedFn, one method value shared by all of them.
	planned      []plannedEpisode
	runPlannedFn func(int32)

	// per-device exposure dedup bitmaps.
	seenRAT    [numRATIdx]bool
	seenBSRAT  [numRATIdx]bool
	seenRATLvl [numRATIdx][telephony.NumSignalLevels]bool

	shard *shardState
	scr   *laneScratch
}

// shardState is aggregation local to one worker shard.
type shardState struct {
	trans TransitionMatrix
	dwell DwellStats
	pop   Population
	sink  monitor.Sink
	// refMass is the fleet-level expected transition hazard mass per
	// device class under the vanilla policy (see estimateClassMasses).
	refMass map[classKey]classMass
}

// classKey buckets devices for transition-mass normalization.
type classKey struct {
	fiveG    bool
	android9 bool
}

func deviceClass(m device.Model) classKey {
	return classKey{fiveG: m.FiveG, android9: m.Android == 9}
}

// simRadio scripts setup outcomes for the real DataConnection machine.
type simRadio struct {
	clock    *simclock.Scheduler
	latency  time.Duration
	outcomes []android.SetupOutcome
	next     int
}

func (r *simRadio) Setup(done func(android.SetupOutcome)) {
	out := android.SetupOutcome{Success: true}
	if r.next < len(r.outcomes) {
		out = r.outcomes[r.next]
		r.next++
	}
	r.clock.PostAfter(r.latency, func() { done(out) })
}

func (r *simRadio) Teardown(done func()) {
	r.clock.PostAfter(r.latency/2, func() { done() })
}

func (r *simRadio) script(outcomes []android.SetupOutcome) {
	r.outcomes = outcomes
	r.next = 0
}

// opExec executes recovery operations against the device's host: a
// successful operation heals a network-side stall.
type opExec struct{ a *actor }

func (e opExec) Execute(op android.RecoveryOp, done func(bool)) {
	a := e.a
	overhead := a.cal.OpOverhead[int(op)-1]
	a.clock.PostAfter(overhead, func() {
		p := a.cal.OpSuccess[int(op)-1]
		// Device-side recovery cannot repair broken infrastructure: on
		// long-neglected remote BSes the operations mostly fail, which is
		// where the paper's multi-hour outages come from.
		if a.att.BS != nil && a.att.BS.Region == geo.Remote {
			p *= 0.45
		}
		success := a.r.Bool(p)
		// System-side faults (firewall/proxy/driver) are not fixable by
		// connection-level recovery; they are filtered by the prober
		// anyway, usually before any operation fires.
		if a.host.ConditionNow().SystemSide() {
			success = false
		}
		if success {
			a.host.SetCondition(netprobe.Healthy)
		}
		done(success)
	})
}

// newActor builds a device and plans its episodes. The dwell chain runs
// immediately (it is pure accounting); episodes are scheduled on the clock.
// scr is the caller's allocation arena: a worker lane passes one scratch
// reused across its whole device range, the legacy shared-queue path one
// per actor (its actors are alive concurrently).
func newActor(id uint64, m device.Model, clock *simclock.Scheduler, r *rng.Source, scen *Scenario, net *simnet.Network, shard *shardState, inj *faultinject.Injector, scr *laneScratch) *actor {
	a := &actor{
		id:    id,
		model: m,
		clock: clock,
		r:     r,
		scen:  scen,
		cal:   scen.Calibration,
		net:   net,
		shard: shard,
		inj:   inj,
		scr:   scr,
	}
	if inj != nil {
		// The fault stream is keyed on the device index, not the shard, so
		// campaign decisions are worker-count-independent like everything
		// else. Reseeding scratch's generator in place yields the same
		// stream SplitIndexed would allocate.
		if scr.fr == nil {
			scr.fr = rng.New(0)
		}
		scr.fr.Reseed(rng.IndexedSeed(scen.Seed, "faultinject", int(id-1)))
		a.fr = scr.fr
	}
	a.isp = sampleISP(r)
	// ISP quality modulates both whether a device fails at all and how
	// often (Figures 12/13): scale the model's Table-1 prevalence and
	// frequency by the subscriber's carrier factor.
	scaled := m
	f := simnet.ISPs()[a.isp].PrevalenceFactor
	scaled.Prevalence *= f
	if scaled.Prevalence > 0.95 {
		scaled.Prevalence = 0.95
	}
	scaled.Frequency *= f
	a.intensity = device.SampleIntensity(r, scaled, device.DefaultIntensityParams())
	a.policy = a.pickPolicy()
	if m.FiveG && scen.DualConnectivity {
		a.dual = android.DualConnectivity{Enabled: true}
	}

	a.host = netprobe.NewSimHost(clock)
	monCfg := monitor.DefaultConfig()
	monCfg.DisableFiltering = scen.DisableFPFilter
	a.mon = monitor.New(clock, monCfg, id, m.ID, m.Android, m.FiveG, a.host, shard.sink)
	a.radio = &simRadio{clock: clock, latency: 300 * time.Millisecond}
	a.dc = android.NewDataConnection(clock, a.radio, android.DefaultDataConnectionConfig(), android.Hooks{
		OnSetupAbandoned: func(cause telephony.FailCause) { a.finishSetupEpisode(cause) },
		OnConnected: func() {
			if a.inSetup {
				a.finishSetupEpisode(a.setupCause)
			}
		},
		OnSetupError: func(cause telephony.FailCause, attempt int) {
			a.setupCause = cause
			a.setupAttempts = attempt
		},
	})
	a.detector = android.NewStallDetector(clock, android.DefaultStallDetectorConfig(), nil)
	a.detector.OnStall = a.onStallDetected
	a.engine = android.NewRecoveryEngine(clock, scen.Trigger, opExec{a}, func(res android.Resolution) {
		a.mon.NoteStallResolution(res)
	})
	a.mon.BindRecovery(a.engine, a.detector)
	a.diag = android.NewDiagnosticsManager(clock)
	a.service = android.NewServiceTracker(clock, android.ServiceHooks{
		OnStateChange: func(_, to telephony.ServiceState) {
			// The Out_of_Service checker is one of the few interfaces
			// vanilla Android exposes to user space (§2.1).
			a.diag.NotifyServiceState(to)
		},
		OnOutOfServiceEnd: func(d time.Duration) {
			a.mon.OnOutOfService(d, a.oosTransition)
			a.oosTransition = nil
			if a.oosFault != nil {
				a.oosFault.NoteRecovered()
				a.oosFault = nil
			}
			a.busy = false
			a.events++
		},
	})

	a.accountPopulation()
	a.planned = a.dwellChainAndPlan()
	scr.planned = a.planned // retain growth for the next device on this lane
	// One bound method value dispatches the whole plan by index: scheduling
	// N episodes costs zero allocations instead of N closures and timers.
	a.runPlannedFn = a.runPlanned
	for i := range a.planned {
		clock.PostIdx(a.planned[i].at, a.runPlannedFn, int32(i))
	}
	return a
}

// runPlanned dispatches planned episode i; it is scheduled via PostIdx.
func (a *actor) runPlanned(i int32) { a.runEpisode(a.planned[i], 0) }

func (a *actor) pickPolicy() android.RATPolicy {
	switch a.scen.Policy {
	case PolicyStability:
		return android.StabilityCompatiblePolicy{Risk: a.risk}
	case PolicyNever5G:
		return android.Never5GPolicy{}
	default:
		if a.model.Android >= 10 {
			return android.Android10Policy{}
		}
		return android.Android9Policy{}
	}
}

// risk estimates an option's failure likelihood for the stability policy,
// mirroring what Figure 16 taught the paper's authors: weak signal is the
// dominant factor, and immature 5G modules carry extra risk. Steady-state
// contention differences among legacy RATs are deliberately excluded —
// the policy weighs connection stability, not load.
func (a *actor) risk(o android.RATOption) float64 {
	h := simnet.LevelHazard(o.Level)
	if o.RAT == telephony.RAT5G {
		h *= simnet.ContentionFactor[telephony.RAT5G]
	}
	return h
}

var ispPick = func() *rng.Categorical {
	isps := simnet.ISPs()
	ws := make([]float64, len(isps))
	for i, isp := range isps {
		ws[i] = isp.UserShare
	}
	return rng.NewCategorical(ws)
}()

func sampleISP(r *rng.Source) simnet.ISPID { return simnet.ISPID(ispPick.Draw(r)) }

var regionPick = func() *rng.Categorical {
	ws := make([]float64, geo.NumRegions)
	for i, p := range geo.Profiles() {
		ws[i] = p.TrafficShare
	}
	return rng.NewCategorical(ws)
}()

func (a *actor) accountPopulation() {
	a.shard.pop.Total++
	a.shard.pop.ByModel[a.model.ID]++
	a.shard.pop.ByISP[a.isp]++
	if a.model.FiveG {
		a.shard.pop.FiveG++
	}
	if a.model.Android == 9 {
		a.shard.pop.Android9++
	} else if !a.model.FiveG {
		a.shard.pop.Android10No5G++
	}
}

// candidateOptions samples the camping choices visible at a location.
func (a *actor) candidateOptions(r *rng.Source, region geo.Region) ([]simnet.Attachment, []android.RATOption) {
	return a.candidateOptionsAt(r, region, 0)
}

// candidateOptionsAt samples the camping choices visible at a location at
// a virtual time, applying the fault campaign's condition overrides (RSS
// degradation, RAT downgrades) when one is active. The returned slices are
// backed by the actor's lane scratch and are valid until the next call.
func (a *actor) candidateOptionsAt(r *rng.Source, region geo.Region, at time.Duration) ([]simnet.Attachment, []android.RATOption) {
	var ov simnet.Overlay
	if a.inj != nil {
		ov = a.inj
	}
	return sampleCandidatesAt(a.net, r, a.isp, a.model.FiveG, region, at, ov,
		a.scr.candAtts[:0], a.scr.candOpts[:0])
}

// sampleCandidates draws the camping choices visible to a device of the
// given capability at a location, in the calm environment.
func sampleCandidates(net *simnet.Network, r *rng.Source, isp simnet.ISPID, fiveG bool, region geo.Region) ([]simnet.Attachment, []android.RATOption) {
	return sampleCandidatesAt(net, r, isp, fiveG, region, 0, nil, nil, nil)
}

// candidateWants lists the RAT draws in preference-probe order; 5G-capable
// devices additionally probe 5G.
var (
	candidateWants4 = [...]telephony.RAT{telephony.RAT4G, telephony.RAT2G, telephony.RAT3G}
	candidateWants5 = [...]telephony.RAT{telephony.RAT4G, telephony.RAT2G, telephony.RAT3G, telephony.RAT5G}
)

// sampleCandidatesAt is sampleCandidates under a fault overlay: sampled
// levels are shifted and blocked RATs fall back exactly as the network
// would present them at virtual time at. atts/opts are caller scratch
// (appended to; pass nil to allocate fresh).
func sampleCandidatesAt(net *simnet.Network, r *rng.Source, isp simnet.ISPID, fiveG bool, region geo.Region, at time.Duration, ov simnet.Overlay, atts []simnet.Attachment, opts []android.RATOption) ([]simnet.Attachment, []android.RATOption) {
	wants := candidateWants4[:]
	if fiveG {
		wants = candidateWants5[:]
	}
	var seen uint8 // bitmask over RAT indices (numRATIdx <= 8)
	for _, w := range wants {
		att, err := net.AttachAt(r, isp, region, w, at, ov)
		if err != nil {
			continue
		}
		if seen&(1<<uint(att.RAT)) != 0 {
			continue
		}
		seen |= 1 << uint(att.RAT)
		atts = append(atts, att)
		opts = append(opts, android.RATOption{RAT: att.RAT, Level: att.Level})
	}
	if len(atts) == 0 {
		// No service anywhere for this ISP; synthesize a dead camp.
		atts = append(atts, simnet.Attachment{})
		opts = append(opts, android.RATOption{})
	}
	return atts, opts
}

// dwellChainAndPlan walks the device through DwellSamples attachments over
// the window, accounting dwell/exposure, counting policy-driven RAT
// transitions, rolling transition-induced failures, and planning base
// failure opportunities. It returns the planned episodes.
func (a *actor) dwellChainAndPlan() []plannedEpisode {
	cal := a.cal
	k := cal.DwellSamples
	if k < 2 {
		k = 2
	}
	slot := a.scen.Window / time.Duration(k)

	// Per-device kind weights: Out_of_Service only befalls OOS-prone
	// devices; others fold that mass into Data_Stall.
	a.buildKindPick()

	// Transition-failure intensity: under the *vanilla* policy a device's
	// transition-induced failures make up share×E[failures]. The per-
	// transition probability constant is therefore normalized against a
	// reference chain walked with the vanilla policy — a physical property
	// of the environment that does not depend on the deployed policy — so
	// a policy that avoids hazardous transitions genuinely removes those
	// failures instead of redistributing them (Figures 19/20).
	share := cal.TransitionShareOther
	if a.model.FiveG && a.model.Android >= 10 {
		share = cal.TransitionShare5G
		if a.intensity.ExpectedFailures <= cal.TransitionOnlyMaxE && a.r.Bool(cal.TransitionOnly5G) {
			share = 1
		}
	}
	transitionOnly := share >= 1
	if !a.intensity.Prone || a.shard.refMass[deviceClass(a.model)].total <= 0 {
		share = 0
	}
	lambda := share // non-zero iff transition failures apply to this device

	planned := a.scr.planned[:0]
	a.chainAtts = a.scr.chainAtts[:0]
	a.chainWeights = a.scr.chainWeights[:0]

	// Base opportunities.
	if a.intensity.Prone {
		mean := a.intensity.ExpectedFailures * (1 - share)
		n := device.Poisson(a.r, mean)
		if n > a.scen.MaxEventsPerDevice {
			n = a.scen.MaxEventsPerDevice
		}
		// A prone device is by definition one that experiences at least
		// one failure during the window; guarantee the draw — except for
		// 5G/Android-10 devices, whose large transition-induced share can
		// legitimately account for all of a light device's failures (that
		// is exactly how the patched policy reduces *prevalence*, not just
		// frequency, in Figure 19).
		if n == 0 && share < 0.2 {
			n = 1
		}
		for i := 0; i < n; i++ {
			planned = append(planned, plannedEpisode{
				at:   time.Duration(a.r.Float64() * float64(a.scen.Window)),
				kind: a.sampleKind(),
			})
		}
		// Extra false-positive episodes: suspicious events the monitor
		// must filter; they record nothing.
		nfp := device.Poisson(a.r, a.intensity.ExpectedFailures*cal.FPExtraRate)
		for i := 0; i < nfp; i++ {
			kind := failure.DataStall
			if a.r.Bool(cal.FPSetupShare) {
				kind = failure.DataSetupError
			}
			planned = append(planned, plannedEpisode{
				at:   time.Duration(a.r.Float64() * float64(a.scen.Window)),
				kind: kind,
				fp:   true,
			})
		}
	}

	// Walk the chain, accounting dwell and collecting RAT transitions.
	transitions := a.scr.transitions[:0]
	var massSum float64

	prev := simnet.Attachment{}
	cur := &android.RATOption{}
	hasPrev := false
	mobility := geo.NewMobility(a.r)
	for i := 0; i < k; i++ {
		slotStart := time.Duration(i) * slot
		region := mobility.Next(a.r)
		atts, opts := a.candidateOptionsAt(a.r, region, slotStart)
		var choice int
		if hasPrev {
			// The current serving cell sometimes remains reachable after
			// the move, letting a policy decline every fresh candidate
			// and stay camped.
			if a.r.Bool(cal.StayProb) {
				atts = append(atts, prev)
				opts = append(opts, *cur)
			}
			choice = a.policy.Select(cur, opts)
		} else {
			choice = a.policy.Select(nil, opts)
		}
		att := atts[choice]

		// A campaign blackout/flap takes the chosen BS out of service: the
		// device suffers an observable Out_of_Service episode against the
		// downed camp, then re-camps on whichever already-sampled candidate
		// survives (no redraws, so the base stream stays aligned).
		if a.inj != nil && att.BS != nil {
			if dr := a.inj.DownRuleFor(att.BS, slotStart); dr != nil {
				lo, hi := maxDur(slotStart, dr.Start), minDur(slotStart+slot, dr.End())
				if hi > lo {
					at := lo + time.Duration(a.fr.Float64()*float64(hi-lo))
					planned = append(planned, plannedEpisode{
						at:     at,
						kind:   failure.OutOfService,
						att:    att,
						hasAtt: true,
						fault:  dr,
						dur:    a.cappedFaultDur(a.cal.SampleOOSDuration(a.fr), at),
					})
				}
				var aliveAtts []simnet.Attachment
				var aliveOpts []android.RATOption
				for j := range atts {
					if atts[j].BS != nil && a.inj.BSDown(atts[j].BS, slotStart) {
						continue
					}
					aliveAtts = append(aliveAtts, atts[j])
					aliveOpts = append(aliveOpts, opts[j])
				}
				switch {
				case len(aliveAtts) == 0:
					att = simnet.Attachment{} // dead camp: nothing reachable
				case hasPrev:
					att = aliveAtts[a.policy.Select(cur, aliveOpts)]
				default:
					att = aliveAtts[a.policy.Select(nil, aliveOpts)]
				}
			}
		}
		a.accountDwell(att, slot)
		if att.BS != nil {
			w := att.BS.Region.Profile().DwellFactor * a.net.Hazard(a.isp, att)
			if w > 0 {
				a.chainAtts = append(a.chainAtts, att)
				a.chainWeights = append(a.chainWeights, w)
			}
		}

		if hasPrev && att.BS != nil && prev.BS != nil && att.RAT != prev.RAT {
			a.shard.trans.Exposure[prev.RAT][prev.Level][att.RAT][att.Level]++
			if lambda > 0 {
				if transitionOnly && !(att.RAT == telephony.RAT5G && att.Level <= telephony.Level1) {
					// Transition-only devices fail exclusively on the
					// avoidable weak-5G transitions (Figure 17f): blind
					// handovers into 5G cells with level-0/1 signal,
					// which the stability-compatible policy refuses.
					goto next
				}
				mass := simnet.TransitionHazard(att) * a.windowFraction(prev.RAT, att.RAT)
				if mass > 0 {
					transitions = append(transitions, chainTransition{
						slot: i,
						att:  att,
						info: failure.TransitionInfo{
							FromRAT: prev.RAT, ToRAT: att.RAT,
							FromLevel: prev.Level, ToLevel: att.Level,
						},
						mass: mass,
					})
					massSum += mass
				}
			}
		}
	next:
		prev = att
		*cur = android.RATOption{RAT: att.RAT, Level: att.Level}
		hasPrev = att.BS != nil
		if i == 0 {
			a.att = att
			a.applyContext(att)
		}

		// Campaign storms: a device camped under a matching selector while
		// a setup-storm or stall-storm rule is active suffers extra
		// episodes, Poisson-scaled by the slot's overlap with the rule
		// window. All draws come from the fault stream.
		if a.inj != nil && att.BS != nil {
			for _, ar := range a.inj.StormRules() {
				if !ar.Sel.MatchCamp(a.isp, att) {
					continue
				}
				lo, hi := maxDur(slotStart, ar.Start), minDur(slotStart+slot, ar.End())
				if hi <= lo {
					continue
				}
				mean := ar.Intensity * float64(hi-lo) / float64(ar.Window)
				neglect := att.BS.Region.Profile().NeglectFactor
				for n := device.Poisson(a.fr, mean); n > 0; n-- {
					ep := plannedEpisode{
						at:     lo + time.Duration(a.fr.Float64()*float64(hi-lo)),
						kind:   failure.DataStall,
						att:    att,
						hasAtt: true,
						fault:  ar,
					}
					if ar.Class == faultinject.ClassSetupStorm {
						ep.kind = failure.DataSetupError
						if c, ok := ar.SampleCause(a.fr); ok {
							ep.cause = c
						}
					} else {
						ep.dur = a.cappedFaultDur(a.cal.SampleStallAutoFix(a.fr, neglect), ep.at)
					}
					planned = append(planned, ep)
				}
			}
		}

		// Injected regional outages: a device present in the region while
		// its infrastructure is down suffers extra stall episodes.
		if att.BS != nil {
			for _, out := range a.scen.Outages {
				if att.BS.Region != out.Region || out.EpisodesPerDevice <= 0 {
					continue
				}
				oStart, oEnd := out.Start, out.Start+out.Window
				if slotStart+slot <= oStart || slotStart >= oEnd {
					continue
				}
				// Overlap fraction scales the expected episode count.
				lo, hi := maxDur(slotStart, oStart), minDur(slotStart+slot, oEnd)
				mean := out.EpisodesPerDevice * float64(hi-lo) / float64(out.Window)
				for n := device.Poisson(a.r, mean); n > 0; n-- {
					planned = append(planned, plannedEpisode{
						at:     lo + time.Duration(a.r.Float64()*float64(hi-lo)),
						kind:   failure.DataStall,
						att:    att,
						hasAtt: true,
					})
				}
			}
		}
	}

	// Transition-failure budget: share×E scaled by how the device's
	// realized hazard mass compares to the vanilla class expectation. A
	// policy that avoids hazardous transitions shrinks the mass and hence
	// the budget; the ratio is capped so a single unlucky chain cannot
	// make one device explode.
	if lambda > 0 && len(transitions) > 0 && massSum > 0 {
		cm := a.shard.refMass[deviceClass(a.model)]
		refMass := cm.total
		if transitionOnly {
			refMass = cm.risky
		}
		if refMass <= 0 {
			refMass = cm.total
		}
		ratio := massSum / refMass
		if ratio > 8 {
			ratio = 8
		}
		budget := device.Poisson(a.r, share*a.intensity.ExpectedFailures*ratio)
		if budget > a.scen.MaxEventsPerDevice {
			budget = a.scen.MaxEventsPerDevice
		}
		weights := a.scr.weights[:0]
		for _, tr := range transitions {
			weights = append(weights, tr.mass)
		}
		a.scr.weights = weights
		cum := rng.BuildCum(a.scr.cum, weights)
		a.scr.cum = cum
		for f := 0; f < budget; f++ {
			tr := &transitions[rng.DrawCum(a.r, cum)]
			a.shard.trans.Failures[tr.info.FromRAT][tr.info.FromLevel][tr.info.ToRAT][tr.info.ToLevel]++
			planned = append(planned, plannedEpisode{
				at:            time.Duration(tr.slot)*slot + time.Duration(a.r.Float64()*float64(slot)),
				kind:          a.sampleTransitionKind(),
				transition:    tr.info,
				hasTransition: true,
				att:           tr.att,
				hasAtt:        true,
			})
		}
	}

	// Retain buffer growth on the lane scratch for the next device.
	a.scr.transitions = transitions
	a.scr.chainAtts = a.chainAtts
	a.scr.chainWeights = a.chainWeights
	return planned
}

// kindList is the fixed order of failure kinds buildKindPick weighs.
var kindList = [...]failure.Kind{failure.DataSetupError, failure.DataStall, failure.OutOfService, failure.SMSSendFail, failure.VoiceFailure}

func (a *actor) buildKindPick() {
	cal := a.cal
	var ws [len(kindList)]float64
	for i, k := range kindList {
		ws[i] = cal.KindWeights[k]
	}
	// Out_of_Service is concentrated in the OOS-prone minority (only ~5%
	// of phones ever see one, §3.1): prone devices carry the fleet OOS
	// mass scaled up by the prone fraction, others redistribute it over
	// the remaining kinds proportionally, preserving the fleet-wide mix.
	const proneFrac = 0.22
	oos := ws[2]
	if a.intensity.OOSProne {
		ws[2] = oos / proneFrac
		scale := (1 - ws[2]) / (1 - oos)
		if scale < 0 {
			scale = 0
		}
		for i := range ws {
			if i != 2 {
				ws[i] *= scale
			}
		}
	} else {
		ws[2] = 0
		scale := 1 / (1 - oos)
		for i := range ws {
			if i != 2 {
				ws[i] *= scale
			}
		}
	}
	a.kindCum = rng.BuildCum(a.scr.kindCum, ws[:])
	a.scr.kindCum = a.kindCum
}

func (a *actor) sampleKind() failure.Kind {
	return kindList[rng.DrawCum(a.r, a.kindCum)]
}

// sampleTransitionKind draws the failure kind for a transition-induced
// episode; transitions mostly break setup (IRAT handover failures) or
// stall the connection. Out_of_Service stays confined to OOS-prone
// devices (§3.1: 95% of phones never see one).
func (a *actor) sampleTransitionKind() failure.Kind {
	u := a.r.Float64()
	switch {
	case u < 0.55:
		return failure.DataSetupError
	case u < 0.90 || !a.intensity.OOSProne:
		return failure.DataStall
	default:
		return failure.OutOfService
	}
}

// windowFraction scales transition-failure probability by the transition
// vulnerability window; dual connectivity shrinks the 4G/5G window.
func (a *actor) windowFraction(from, to telephony.RAT) float64 {
	base := a.cal.TransitionWindow
	w := a.dual.TransitionWindow(base, from, to)
	return float64(w) / float64(base)
}

func (a *actor) accountDwell(att simnet.Attachment, slot time.Duration) {
	if att.BS == nil {
		return
	}
	rat := att.RAT
	lvl := att.Level
	d := &a.shard.dwell
	d.Seconds[rat][lvl] += slot.Seconds() * att.BS.Region.Profile().DwellFactor
	// Exposure sets are per device; dedupe with the actor's bitmaps.
	if !a.seenRATLvl[rat][lvl] {
		a.seenRATLvl[rat][lvl] = true
		d.DevicesExposed[rat][lvl]++
	}
	if !a.seenRAT[rat] {
		a.seenRAT[rat] = true
		d.DevicesOnRAT[rat]++
	}
	for _, bsRAT := range att.BS.RATs {
		if !a.seenBSRAT[bsRAT] {
			a.seenBSRAT[bsRAT] = true
			d.DevicesOnBSRAT[bsRAT]++
		}
	}
}

func (a *actor) applyContext(att simnet.Attachment) {
	ctx := monitor.InSitu{ISP: a.isp, RAT: att.RAT, Level: att.Level, APN: telephony.APNDefault}
	if att.BS != nil {
		ctx.Cell = att.BS.Identity
		ctx.Region = att.BS.Region
		ctx.DenseBS = att.BS.Dense
	}
	a.mon.SetContext(ctx)
}

// cappedFaultDur bounds a fault episode's duration so it concludes — and
// its measurement drains — inside the post-window slack the shard clock
// runs. Organic heavy-tail episodes may outlast the run; injected ones
// must not, because the recovery invariant counts their conclusions.
func (a *actor) cappedFaultDur(d time.Duration, at simclock.Time) time.Duration {
	deadline := a.scen.Window + time.Hour
	if at+d > deadline {
		d = deadline - at
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
