package fleet

import (
	"time"

	"repro/internal/android"
	"repro/internal/failure"
	"repro/internal/geo"
	"repro/internal/netprobe"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/telephony"
)

// runEpisode executes one failure opportunity. A device handles one
// episode at a time; collisions retry shortly after (a phone does not
// have two independent outages of the same data connection at once).
func (a *actor) runEpisode(ep plannedEpisode, retries int) {
	if a.events >= a.scen.MaxEventsPerDevice {
		if ep.fault != nil {
			ep.fault.NoteDropped()
		}
		return
	}
	if a.busy {
		if retries > 50 {
			// pathological pile-up; drop the opportunity
			if ep.fault != nil {
				ep.fault.NoteDropped()
			}
			return
		}
		a.clock.PostAfter(time.Duration(30+a.r.Intn(60))*time.Second, func() {
			a.runEpisode(ep, retries+1)
		})
		return
	}
	// Attachment context: transition episodes pin the post-transition
	// camp; base episodes land on a hazard-tilted attachment (failures
	// concentrate where the radio environment is hostile).
	var att simnet.Attachment
	if ep.hasAtt {
		att = ep.att
	} else {
		att = a.hazardTiltedAttachment()
	}
	if att.BS == nil {
		// no serving BS anywhere; nothing to fail against
		if ep.fault != nil {
			ep.fault.NoteDropped()
		}
		return
	}
	a.att = att
	a.applyContext(att)
	// A failure implies the device camped here: exposure denominators
	// must include it or prevalence ratios for rare contexts would be
	// biased upward.
	a.accountDwell(att, 0)

	switch ep.kind {
	case failure.DataSetupError:
		a.runSetupEpisode(ep)
	case failure.DataStall:
		a.runStallEpisode(ep)
	case failure.OutOfService:
		a.runOOSEpisode(ep)
	case failure.SMSSendFail, failure.VoiceFailure:
		a.mon.OnLegacyFailure(ep.kind, telephony.CauseNetworkFailure)
		a.events++
	}
}

// hazardTiltedAttachment samples the failure's radio context from the
// device's dwell chain, weighted by dwell time × environmental hazard:
// failures concentrate where the device actually spends risky time, so
// per-context failure rates stay consistent with the dwell denominators
// the normalized-prevalence figures divide by.
func (a *actor) hazardTiltedAttachment() simnet.Attachment {
	if len(a.chainAtts) == 0 {
		// Degenerate chain (no service anywhere): draw a fresh context.
		region := geo.Region(regionPick.Draw(a.r))
		atts, opts := a.candidateOptions(a.r, region)
		return atts[a.policy.Select(nil, opts)]
	}
	total := 0.0
	for _, w := range a.chainWeights {
		total += w
	}
	u := a.r.Float64() * total
	acc := 0.0
	for i, w := range a.chainWeights {
		acc += w
		if u < acc {
			return a.chainAtts[i]
		}
	}
	return a.chainAtts[len(a.chainAtts)-1]
}

// --- Data_Setup_Error -------------------------------------------------

// runSetupEpisode drives the real data-connection state machine through a
// scripted sequence of radio failures, exactly as a phone would experience
// them; the monitoring service receives the per-attempt Data_Setup_Error
// notifications through the machine's hooks.
func (a *actor) runSetupEpisode(ep plannedEpisode) {
	a.busy = true
	a.inSetup = true
	a.setupTransition = ep.transitionPtr()
	a.setupStart = a.clock.Now()
	a.setupAttempts = 0
	a.setupCause = telephony.CauseNone

	maxAttempts := len(android.DefaultDataConnectionConfig().RetryDelays) + 1
	attempts := a.cal.SampleSetupAttempts(a.r, maxAttempts)

	// The script buffer is lane scratch: the radio consumes it before the
	// episode concludes and the device runs one episode at a time.
	outcomes := a.scr.outcomes[:0]
	for i := 0; i < attempts; i++ {
		var cause telephony.FailCause
		switch {
		case ep.fp:
			cause = sampleFPCause(a.r)
		case ep.cause != telephony.CauseNone:
			// Setup-storm episodes carry the incident's cause mix: every
			// retry fails the same way a control-plane outage fails.
			cause = ep.cause
		default:
			cause = simnet.SampleSetupCause(a.r, a.att)
		}
		outcomes = append(outcomes, android.SetupOutcome{Success: false, Cause: cause})
	}
	outcomes = append(outcomes, android.SetupOutcome{Success: true})
	a.scr.outcomes = outcomes
	a.radio.script(outcomes)

	if a.dc.State() == android.DcActive {
		a.dc.ConnectionLost(telephony.CauseSignalLost)
	}
	if a.dc.State() != android.DcInactive {
		a.inSetup = false
		a.busy = false
		if ep.fault != nil {
			ep.fault.NoteDropped()
		}
		return
	}
	if ep.fault != nil {
		a.setupFault = ep.fault
		ep.fault.NoteInjected()
	}
	_ = a.dc.RequestSetup()
}

// finishSetupEpisode concludes the episode when the state machine either
// connects after retries or abandons.
func (a *actor) finishSetupEpisode(cause telephony.FailCause) {
	if !a.inSetup {
		return
	}
	a.inSetup = false
	a.busy = false
	attempts := a.setupAttempts
	trans := a.setupTransition
	a.setupTransition = nil
	if a.setupFault != nil {
		// The episode concluded — connected after retries or abandoned —
		// either way the machine is back in a steady state.
		a.setupFault.NoteRecovered()
		a.setupFault = nil
	}
	if attempts == 0 {
		return // connected first try; not a failure episode
	}
	// Outage duration: the retry machinery's span plus the surrounding
	// no-service gap.
	dur := a.clock.Now() - a.setupStart
	dur += time.Duration(a.r.Exp(a.cal.SetupNoServiceGap) * float64(time.Second))
	a.events++
	a.mon.OnSetupEpisode(cause, attempts, dur, trans)
}

var fpCauses = []telephony.FailCause{
	telephony.CauseCongestion,
	telephony.CauseInsufficientResources,
	telephony.CauseVoiceCallPreemption,
	telephony.CauseBillingSuspension,
	telephony.CauseManualDetach,
	telephony.CauseRadioPowerOff,
}

var fpCausePick = rng.NewCategorical([]float64{0.40, 0.15, 0.15, 0.10, 0.15, 0.05})

func sampleFPCause(r *rng.Source) telephony.FailCause {
	return fpCauses[fpCausePick.Draw(r)]
}

// --- Data_Stall --------------------------------------------------------

// runStallEpisode injects a stall condition into the device's network
// stack and lets the full machinery react: the detector flags the stall
// from TCP counters, the monitor probes and measures, the recovery engine
// escalates through its stages, and the episode resolves by whichever of
// natural recovery, a recovery operation, or a user reset comes first.
func (a *actor) runStallEpisode(ep plannedEpisode) {
	a.busy = true
	cond := netprobe.NetworkDown
	if ep.fp {
		cond = a.cal.SampleFPStallCondition(a.r)
	}
	neglect := 1.0
	if a.att.BS != nil {
		neglect = a.att.BS.Region.Profile().NeglectFactor
	}
	autoFix := a.cal.SampleStallAutoFix(a.r, neglect)
	if ep.fault != nil {
		a.stallFault = ep.fault
		ep.fault.NoteInjected()
		if ep.dur > 0 {
			// Pre-sampled and capped so the injected stall heals — and its
			// measurement concludes — inside the run's slack.
			autoFix = ep.dur
		}
	}

	a.stallTransition = ep.transitionPtr()
	a.stallAutoFix = autoFix
	a.host.SetCondition(cond)
	a.detector.Start()
	// The application keeps transmitting into the void: outbound TCP
	// segments with no inbound traffic, the kernel statistic Android's
	// detector watches.
	a.detector.RecordTx(12)

	a.healTimer = a.clock.After(autoFix, func() { a.resolveStall(android.ResolvedAuto) })
	if ur := a.cal.SampleUserReset(a.r); ur > 0 {
		a.resetTimer = a.clock.After(ur, func() { a.resolveStall(android.ResolvedUserReset) })
	}
}

// onStallDetected is the detector's callback: hand the episode to the
// monitoring service, publish the app-visible DataStallReport, and start
// the recovery engine, as Android does.
func (a *actor) onStallDetected() {
	a.mon.OnStallDetected(a.stallTransition, a.stallAutoFix, a.endStall)
	a.diag.NotifyDataStall(a.att.RAT, a.att.Level)
	a.engine.Start()
}

// resolveStall heals the underlying condition from natural recovery or a
// user reset; the prober observes health on its next round and concludes
// the measurement.
func (a *actor) resolveStall(by android.ResolvedBy) {
	if a.host.ConditionNow() == netprobe.Healthy {
		return
	}
	a.host.SetCondition(netprobe.Healthy)
	a.engine.NotifyResolved(by)
}

// endStall releases episode resources once the monitor concluded the
// episode (recorded or filtered as a false positive).
func (a *actor) endStall() {
	if a.healTimer != nil {
		a.healTimer.Stop()
	}
	if a.resetTimer != nil {
		a.resetTimer.Stop()
	}
	a.detector.Stop()
	a.host.SetCondition(netprobe.Healthy)
	a.stallTransition = nil
	a.stallAutoFix = 0
	if a.stallFault != nil {
		a.stallFault.NoteRecovered()
		a.stallFault = nil
	}
	a.busy = false
	a.events++
}

// --- Out_of_Service ----------------------------------------------------

// runOOSEpisode drops cellular registration through the service tracker;
// the tracker reports the episode when service returns and the monitor
// records it with the in-situ context.
func (a *actor) runOOSEpisode(ep plannedEpisode) {
	a.busy = true
	a.oosTransition = ep.transitionPtr()
	if ep.fault != nil {
		a.oosFault = ep.fault
		ep.fault.NoteInjected()
		a.service.LoseService(ep.dur, a.fr.Bool(0.15))
		return
	}
	dur := a.cal.SampleOOSDuration(a.r)
	a.service.LoseService(dur, a.r.Bool(0.15))
}
